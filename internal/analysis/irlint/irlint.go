// Package irlint is the IR-level soundness linter behind `aggview
// lint`. Where the go-level analyzers (maporder, floateq, ...) check
// the implementation, irlint checks a *catalog*: it parses a script of
// CREATE TABLE / CREATE VIEW / SELECT statements, rebuilds each
// statement through the validating IR builders, and reports, per view,
// the hazards that make rewriting unsound or silently impossible —
// which of the paper's usability conditions C1–C4 fail and why,
// duplicate GROUP BY columns, grouping columns projected out of the
// view, and aggregation views that cannot recover multiplicities
// (no COUNT column, AVG without COUNT).
//
// Severities: "error" marks statements the builders reject, "warn"
// marks views that build but carry a rewriting hazard, "info" records
// the per-(query, view) usability verdicts. The CI gate fails on
// errors and warnings only.
package irlint

import (
	"fmt"
	"strings"

	"aggview/internal/benchjson"
	"aggview/internal/core"
	"aggview/internal/ir"
	"aggview/internal/keys"
	"aggview/internal/schema"
	"aggview/internal/sqlparser"
)

// Result is the outcome of linting one script.
type Result struct {
	// Views and Queries count the successfully built objects.
	Views   int
	Queries int
	// Diags lists the findings in report order (errors as encountered,
	// then per-view hazards, then usability records).
	Diags []benchjson.LintDiagnostic
}

// Failing counts the error- and warn-severity diagnostics.
func (r *Result) Failing() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity != benchjson.LintInfo {
			n++
		}
	}
	return n
}

// LintScript lints one script. Parse and build failures become
// error-severity diagnostics, never a Go error, so a catalog with one
// bad statement still gets its other statements checked.
func LintScript(file, src string) *Result {
	res := &Result{}
	add := func(d benchjson.LintDiagnostic) {
		d.File = file
		res.Diags = append(res.Diags, d)
	}

	stmts, err := sqlparser.ParseScript(src)
	if err != nil {
		add(benchjson.LintDiagnostic{
			Check: "parse-error", Severity: benchjson.LintError,
			Message: err.Error(),
		})
		return res
	}

	cat := schema.NewCatalog()
	views := ir.NewRegistry()
	src2 := ir.MultiSource{cat, views}
	var queries []*ir.Query
	var labels []string
	qn := 0

	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.CreateTable:
			t := &schema.Table{Name: x.Name, Columns: x.Columns, Keys: x.Keys}
			for _, fd := range x.FDs {
				t.FDs = append(t.FDs, schema.FD{From: fd[0], To: fd[1]})
			}
			if err := cat.AddTable(t); err != nil {
				add(benchjson.LintDiagnostic{
					Check: "invalid-table", Severity: benchjson.LintError,
					Message: err.Error(),
				})
			}
		case *sqlparser.CreateView:
			q, err := ir.Build(x.Query, src2)
			if err != nil {
				add(benchjson.LintDiagnostic{
					View: x.Name, Check: buildCheck(err), Severity: benchjson.LintError,
					Message: fmt.Sprintf("view %s does not build: %v", x.Name, err),
				})
				continue
			}
			v, err := ir.NewViewDef(x.Name, q)
			if err == nil {
				err = views.Add(v)
			}
			if err != nil {
				add(benchjson.LintDiagnostic{
					View: x.Name, Check: buildCheck(err), Severity: benchjson.LintError,
					Message: err.Error(),
				})
				continue
			}
			res.Views++
		case *sqlparser.QueryStatement:
			qn++
			label := fmt.Sprintf("query #%d", qn)
			q, err := ir.Build(x.Query, src2)
			if err != nil {
				add(benchjson.LintDiagnostic{
					Query: label, Check: buildCheck(err), Severity: benchjson.LintError,
					Message: fmt.Sprintf("%s does not build: %v", label, err),
				})
				continue
			}
			res.Queries++
			queries = append(queries, q)
			labels = append(labels, label)
		case *sqlparser.Insert:
			// Data rows carry no rewriting invariants; skip.
		default:
			add(benchjson.LintDiagnostic{
				Check: "unknown-statement", Severity: benchjson.LintError,
				Message: fmt.Sprintf("unsupported statement %T", st),
			})
		}
	}

	for _, v := range views.All() {
		lintView(v, add)
	}

	if res.Queries > 0 && res.Views > 0 {
		rw := &core.Rewriter{
			Schema: cat,
			Views:  views,
			Meta:   keys.CatalogMeta{Catalog: cat},
		}
		for i, q := range queries {
			for _, u := range rw.ExplainUsability(q) {
				d := benchjson.LintDiagnostic{
					View: u.View, Query: labels[i],
					Check: "usability", Severity: benchjson.LintInfo,
				}
				if u.Usable {
					d.Message = fmt.Sprintf("view %s answers %s (%d mapping(s))", u.View, labels[i], u.Mappings)
				} else {
					d.Message = fmt.Sprintf("view %s cannot answer %s: %s",
						u.View, labels[i], strings.Join(u.Failures, "; "))
				}
				add(d)
			}
		}
	}
	return res
}

// buildCheck classifies a builder error into a stable check name.
func buildCheck(err error) string {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "duplicate GROUP BY"):
		return "duplicate-group-by"
	case strings.Contains(msg, "duplicate view"):
		return "duplicate-view"
	default:
		return "invalid-statement"
	}
}

// lintView runs the view-local hazard checks on one built view.
func lintView(v *ir.ViewDef, add func(benchjson.LintDiagnostic)) {
	def := v.Def
	isAgg := def.IsAggregationQuery()

	hasCount, hasAvg := false, false
	for _, it := range def.Select {
		if ag, ok := it.Expr.(*ir.Agg); ok {
			switch ag.Func {
			case ir.AggCount:
				hasCount = true
			case ir.AggAvg:
				hasAvg = true
			}
		}
	}

	if isAgg && !hasCount {
		if hasAvg {
			add(benchjson.LintDiagnostic{
				View: v.Name, Check: "avg-without-count", Severity: benchjson.LintWarn,
				Message: fmt.Sprintf("view %s exposes AVG but no COUNT column: AVG cannot be re-aggregated over coarser groups (AVG = SUM/COUNT needs the counts), and condition C4' cannot recover tuple multiplicities", v.Name),
			})
		} else {
			add(benchjson.LintDiagnostic{
				View: v.Name, Check: "no-count-column", Severity: benchjson.LintWarn,
				Message: fmt.Sprintf("aggregation view %s carries no COUNT column: condition C4' cannot recover tuple multiplicities, so COUNT/AVG queries and coarser re-groupings over the view are rejected; add COUNT(...) to the view output", v.Name),
			})
		}
	}

	if isAgg && def.Distinct {
		add(benchjson.LintDiagnostic{
			View: v.Name, Check: "distinct-aggregation-view", Severity: benchjson.LintWarn,
			Message: fmt.Sprintf("view %s combines DISTINCT with grouping/aggregation: grouped results are already duplicate-free, and the DISTINCT marks the view as a set, blocking every multiset rewriting (Section 4.5)", v.Name),
		})
	}

	for _, g := range def.GroupBy {
		exposed := false
		for _, it := range def.Select {
			if cr, ok := it.Expr.(*ir.ColRef); ok && cr.Col == g {
				exposed = true
				break
			}
		}
		if !exposed {
			add(benchjson.LintDiagnostic{
				View: v.Name, Check: "group-col-projected-out", Severity: benchjson.LintWarn,
				Message: fmt.Sprintf("view %s groups by %s but projects it out: condition C2' needs the query's grouping columns among the view's outputs, so any query grouping on %s is rejected", v.Name, def.Col(g).Attr, def.Col(g).Attr),
			})
		}
	}
}
