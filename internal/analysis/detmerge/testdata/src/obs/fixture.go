// Package obs is the detmerge fixture for the telemetry layer: the
// flight recorder's seq-claimed ring-buffer store (quiet — each writer
// commits to the slot its sequence number names) against the tempting
// completion-order alternative (append under a mutex from concurrent
// recorders), plus a snapshot that restores order by sorting on the
// deterministic sequence.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

type record struct {
	Seq  uint64
	Name string
}

// BadRecordMerge collects records from worker goroutines by appending
// in completion order — the mutex fixes the race, not the order, so
// two identical runs snapshot differently: flagged.
func BadRecordMerge(names []string) []record {
	var out []record
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			mu.Lock()
			out = append(out, record{Seq: uint64(i), Name: n}) // want `completion order`
			mu.Unlock()
		}(i, n)
	}
	wg.Wait()
	return out
}

// ring mirrors the flight recorder: writers claim a sequence number
// and store into the slot it names.
type ring struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[record]
}

// RingStore is the sanctioned idiom — every writer commits to its own
// seq-indexed slot, so occupancy is a pure function of the append
// count: quiet.
func (r *ring) RingStore(names []string) {
	var wg sync.WaitGroup
	for _, n := range names {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			seq := r.seq.Add(1) - 1
			r.slots[seq%uint64(len(r.slots))].Store(&record{Seq: seq, Name: n})
		}(n)
	}
	wg.Wait()
}

// SortedSnapshot drains the slots in scan order, then restores the
// deterministic order by sorting on the stored sequence: quiet.
func (r *ring) SortedSnapshot() []record {
	var out []record
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
