// Package engine is the detmerge fixture, named after a kernel package
// so the analyzer applies: completion-order merges in both flagged
// shapes, the indexed-slot and sort-after idioms that stay quiet, and
// one justified suppression.
package engine

import (
	"sort"
	"sync"
)

// BadMerge appends to a shared slice from worker goroutines — the
// mutex fixes the race, not the order: shape 1.
func BadMerge(parts [][]int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			mu.Lock()
			out = append(out, p...) // want `completion order`
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}

// SortedMerge restores a deterministic order after the merge: quiet.
func SortedMerge(parts [][]int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			mu.Lock()
			out = append(out, p...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	sort.Ints(out)
	return out
}

// SlotMerge commits results by slot index and merges in index order —
// the kernel idiom: quiet.
func SlotMerge(parts [][]int) []int {
	results := make([][]int, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p []int) {
			defer wg.Done()
			results[i] = p
		}(i, p)
	}
	wg.Wait()
	var out []int
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// BadDrain receives worker results off a channel in completion order:
// shape 2.
func BadDrain(parts [][]int) []int {
	ch := make(chan []int)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			ch <- p
		}(p)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	var out []int
	for p := range ch {
		out = append(out, p...) // want `completion order`
	}
	return out
}

// Sampled collects in completion order on purpose — latency samples
// whose order is irrelevant: suppressed.
func Sampled(parts [][]int) []int {
	ch := make(chan []int)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p []int) {
			defer wg.Done()
			ch <- p
		}(p)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	var out []int
	for p := range ch {
		//aggvet:detmerge sampling collector: order is irrelevant by design.
		out = append(out, p...)
	}
	return out
}

// Serial appends with no goroutines in sight: quiet.
func Serial(parts [][]int) []int {
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
