// Package detmerge guards the worker-count output-determinism
// invariant (DESIGN.md section 6): a parallel kernel must produce the
// same answer at workers=1 and workers=N, which requires goroutine
// results to be committed by morsel/slot index, never in completion
// order. The engine's kernels write errs[m] = err into a preallocated
// slot array and merge in index order; the moment somebody "simplifies"
// that to an append under a mutex, the output order starts depending
// on the scheduler and the differential oracle's bag comparisons go
// flaky at exactly the worker counts CI doesn't run.
//
// Two shapes are flagged, in the kernel packages (engine, core,
// oracle, server):
//
//  1. append to a slice declared outside a goroutine's function
//     literal, from inside that literal — the classic shared-slice
//     completion-order merge, mutex or not (the mutex fixes the race,
//     not the order).
//  2. a range over a channel whose body appends to an outer slice, in
//     a function that also launches goroutines — the drain loop
//     receives in completion order.
//
// Both stay quiet when the enclosing function visibly restores a
// deterministic order afterwards (a sort.Slice/sort.Sort/slices.Sort
// call after the merge), and indexed slot writes (results[i] = ...)
// never fire the analyzer. Intentional completion-order collection
// (e.g. load-test sampling where order is irrelevant) documents itself
// with //aggvet:detmerge.
package detmerge

import (
	"go/ast"
	"go/token"
	"go/types"

	"aggview/internal/analysis"
)

// kernelPkgs names the packages whose merges must be index-ordered.
var kernelPkgs = map[string]bool{
	"engine": true,
	"core":   true,
	"oracle": true,
	"server": true,
	// The telemetry layer's snapshots (flight recorder, span stages)
	// are compared byte-for-byte across worker counts, so its merges
	// carry the same index-ordered obligation as the kernels.
	"obs": true,
}

// Analyzer flags completion-order result merges in the kernel packages.
var Analyzer = &analysis.Analyzer{
	Name: "detmerge",
	Doc: "flags goroutine results merged in completion order (append to a shared slice from a " +
		"worker goroutine, or a channel-drain loop appending without a later sort) in the kernel " +
		"packages; parallel kernels must commit results by morsel/slot index for " +
		"worker-count-independent output",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !kernelPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	sortPositions := sortCalls(pass, fn)
	sortedAfter := func(pos token.Pos) bool {
		for _, s := range sortPositions {
			if s > pos {
				return true
			}
		}
		return false
	}

	launchesGoroutine := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			launchesGoroutine = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// Shape 1: append to an outer slice inside the launched
			// literal.
			lit, ok := x.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, app := range outerAppends(pass, lit.Body, lit.Pos(), lit.End()) {
				if sortedAfter(x.End()) {
					continue
				}
				pass.Reportf(app.Pos(),
					"append to shared slice %s from a worker goroutine merges results in completion "+
						"order; commit into an indexed slot (results[i] = ...) and merge in index order, "+
						"or sort afterwards", appendTarget(app))
			}
		case *ast.RangeStmt:
			// Shape 2: channel-drain loop appending to an outer slice
			// in a goroutine-launching function.
			if !launchesGoroutine {
				return true
			}
			t := pass.TypeOf(x.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			for _, app := range outerAppends(pass, x.Body, x.Body.Pos(), x.Body.End()) {
				if sortedAfter(x.End()) {
					continue
				}
				pass.Reportf(app.Pos(),
					"channel-drain loop appends %s in completion order; workers should write "+
						"indexed slots, or sort the collected results before use", appendTarget(app))
			}
		}
		return true
	})
}

// outerAppends finds append calls in body whose target slice is
// declared outside the [from, to] span.
func outerAppends(pass *analysis.Pass, body ast.Node, from, to token.Pos) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		base := baseIdent(call.Args[0])
		if base == nil {
			return true
		}
		obj := pass.ObjectOf(base)
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() < from || obj.Pos() > to {
			out = append(out, call)
		}
		return true
	})
	return out
}

// sortCalls collects the positions of order-restoring calls
// (sort.Slice/SliceStable/Sort/Strings/Ints, slices.Sort*).
func sortCalls(pass *analysis.Pass, fn *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if (pkg.Name == "sort" || pkg.Name == "slices") &&
			(sel.Sel.Name == "Sort" || sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable" ||
				sel.Sel.Name == "SortFunc" || sel.Sel.Name == "SortStableFunc" ||
				sel.Sel.Name == "Strings" || sel.Sel.Name == "Ints") {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// baseIdent unwraps x.y.z / x[i] expressions to the base identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func appendTarget(call *ast.CallExpr) string {
	if id := baseIdent(call.Args[0]); id != nil {
		return id.Name
	}
	return "slice"
}
