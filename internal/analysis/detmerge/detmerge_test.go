package detmerge_test

import (
	"testing"

	"aggview/internal/analysis/analysistest"
	"aggview/internal/analysis/detmerge"
)

func TestDetMerge(t *testing.T) {
	analysistest.Run(t, detmerge.Analyzer, "testdata/src/engine")
}

func TestDetMergeObs(t *testing.T) {
	analysistest.Run(t, detmerge.Analyzer, "testdata/src/obs")
}
