// Package floateq flags exact equality comparisons on floating-point
// values and on value.Value operands.
//
// Rewritten queries reconstruct AVG as SUM/COUNT and rescale SUMs by
// COUNT columns, so numerically equal results can differ in the last
// few bits; comparing them with == silently turns a correct rewriting
// into a spurious mismatch (or hides a real one). The sanctioned
// comparison paths are engine.ResultsEqualBag for relations and
// value.Equal / value.Compare for scalars.
//
// Two exemptions keep the analyzer precise:
//   - epsilon helpers: a function whose body references an identifier
//     containing "epsilon" (e.g. bagEpsilon) is itself the tolerance
//     primitive, and its exact-equality fast path is intentional;
//   - //aggvet:floateq directives with a justification, for the rare
//     exact comparisons that are semantically required (division-by-
//     zero guards, integrality tests).
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aggview/internal/analysis"
)

// valuePkgSuffix identifies the scalar value package across module
// renames.
const valuePkgSuffix = "internal/value"

// Analyzer flags ==/!= on floats and on value.Value.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= on float operands (use an epsilon comparison such as " +
		"engine.ResultsEqualBag's valuesClose) and on value.Value operands " +
		"(use value.Equal, which compares 1 and 1.0 as equal; struct equality does not)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if isEpsilonHelper(fn) {
				return true
			}
			checkFunc(pass, fn)
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		lt, rt := pass.TypeOf(be.X), pass.TypeOf(be.Y)
		switch {
		case isFloat(lt) || isFloat(rt):
			pass.Reportf(be.Pos(),
				"exact %s on float operands: aggregate reconstruction (AVG = SUM/COUNT, scaled SUMs) "+
					"makes bit equality unreliable; compare with an epsilon or justify with //aggvet:floateq", be.Op)
		case isValueStruct(lt) || isValueStruct(rt):
			pass.Reportf(be.Pos(),
				"%s on value.Value compares structs field-by-field (1 != 1.0, exact float payloads); "+
					"use value.Equal or value.Compare", be.Op)
		}
		return true
	})
}

// isEpsilonHelper reports whether the function is itself a tolerance
// primitive: its body mentions an epsilon identifier.
func isEpsilonHelper(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "epsilon") {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isValueStruct matches the named struct type Value from the value
// package (or an alias of it).
func isValueStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Value" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), valuePkgSuffix)
}
