// Package floatfix is the floateq fixture: exact float and value.Value
// comparisons in flagged and allowlisted flavours.
package floatfix

import "aggview/internal/value"

const tieEpsilon = 1e-9

// ExactFloat compares two float64 values bitwise.
func ExactFloat(a, b float64) bool {
	return a == b // want `exact == on float operands`
}

// ExactFloatNeq uses != against a float literal.
func ExactFloatNeq(a float64) bool {
	return a != 0.5 // want `exact != on float operands`
}

// NamedFloat compares a defined type whose underlying type is float64.
type Score float64

// ExactNamed compares named float types.
func ExactNamed(a, b Score) bool {
	return a == b // want `exact == on float operands`
}

// StructEq compares value.Value structs with ==: 1 and 1.0 differ.
func StructEq(a, b value.Value) bool {
	return a == b // want `value.Value compares structs`
}

// EpsilonHelper is a tolerance primitive: its exact fast path is the
// idiomatic shortcut before the relative comparison, and the epsilon
// identifier in its body exempts it.
func EpsilonHelper(a, b float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tieEpsilon
}

// Guarded justifies an exact comparison with a directive.
func Guarded(a float64) bool {
	//aggvet:floateq division-by-zero guard, exact zero intended
	return a == 0
}

// IntEq compares integers: out of scope.
func IntEq(a, b int64) bool {
	return a == b
}

// StrEq compares strings: out of scope.
func StrEq(a, b string) bool {
	return a == b
}

// ValueEqual uses the sanctioned comparison: out of scope.
func ValueEqual(a, b value.Value) bool {
	return value.Equal(a, b)
}

// FloatLess orders floats; only ==/!= are hazards.
func FloatLess(a, b float64) bool {
	return a < b
}
