package floateq_test

import (
	"testing"

	"aggview/internal/analysis/analysistest"
	"aggview/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, floateq.Analyzer, "testdata/src/floatfix")
}
