package maintain

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"aggview/internal/budget"
	"aggview/internal/engine"
	"aggview/internal/faultinject"
	"aggview/internal/obs"
	"aggview/internal/value"
)

func TestDeleteAndUpdatePropagate(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount), COUNT(Amount), MIN(Amount), MAX(Amount) FROM Txns GROUP BY Acct_Id")
	if inc, err := m.Track("V"); err != nil || !inc {
		t.Fatalf("track: inc=%v err=%v", inc, err)
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10), txn(2, 0, 1, 30), txn(3, 1, 1, 7)); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)

	// Deleting the extremum forces a re-scan of the surviving value
	// multiset: MAX must fall back from 30 to 10.
	if err := m.Apply(Mutation{Table: "Txns", Deletes: [][]value.Value{txn(2, 0, 1, 30)}}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ := m.Materialization("V")
	for _, row := range got.Tuples {
		if row[0].AsInt() == 0 && row[4].AsInt() != 10 {
			t.Fatalf("MAX retraction not rescanned: %s", got)
		}
	}

	// An update is a delete+insert in one atomic batch.
	if err := m.Apply(Mutation{
		Table:   "Txns",
		Deletes: [][]value.Value{txn(3, 1, 1, 7)},
		Inserts: [][]value.Value{txn(3, 1, 1, 70)},
	}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)

	// Deleting a group's last row removes the group entirely.
	if err := m.Apply(Mutation{Table: "Txns", Deletes: [][]value.Value{txn(3, 1, 1, 70)}}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ = m.Materialization("V")
	if got.Len() != 1 {
		t.Fatalf("expected the acct-1 group to disappear: %s", got)
	}
}

func TestDeleteAbsentRowIsCleanError(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	err := m.Apply(Mutation{Table: "Txns", Deletes: [][]value.Value{txn(99, 9, 9, 9)}})
	if err == nil {
		t.Fatal("expected an error deleting an absent row")
	}
	// The failed batch must not have touched anything.
	check(t, m, db, reg)
	rel, _ := db.Get("Txns")
	if rel.Len() != 1 {
		t.Fatalf("base table changed by failed delete: %s", rel)
	}
}

// TestIncrementalShapes pins the view shapes that stay incremental
// under counting maintenance, and asserts the maintain.fallback.full
// counter fires exactly for the recompute-based ones (satellite: the
// old code recomputed silently).
func TestIncrementalShapes(t *testing.T) {
	shapes := []struct {
		sql         string
		incremental bool
	}{
		{"SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id", true},
		{"SELECT Acct_Id, COUNT(Amount) FROM Txns GROUP BY Acct_Id", true},
		{"SELECT Acct_Id, AVG(Amount) FROM Txns GROUP BY Acct_Id", true},
		{"SELECT Acct_Id, MIN(Amount), MAX(Amount) FROM Txns GROUP BY Acct_Id", true},
		{"SELECT Acct_Id, SUM(Amount + Amount) FROM Txns GROUP BY Acct_Id", true},
		{"SELECT Branch, SUM(Amount) FROM Txns, Accounts WHERE Txns.Acct_Id = Accounts.Acct_Id GROUP BY Branch", true},
		{"SELECT Txn_Id, Amount FROM Txns WHERE Amount > 10", true},
		{"SELECT SUM(Amount) FROM Txns", true},
		// Not delta-monotone or not expressible as counting deltas:
		{"SELECT DISTINCT Acct_Id FROM Txns", false},
		{"SELECT Acct_Id, COUNT(Amount) FROM Txns GROUP BY Acct_Id HAVING COUNT(Amount) > 1", false},
		{"SELECT Acct_Id, MIN(Amount + Amount) FROM Txns GROUP BY Acct_Id", false},
	}
	for _, sh := range shapes {
		t.Run(sh.sql, func(t *testing.T) {
			m, db, reg := setup(t, sh.sql)
			metrics := obs.NewMetrics()
			m.Metrics = metrics
			inc, err := m.Track("V")
			if err != nil {
				t.Fatal(err)
			}
			if inc != sh.incremental {
				t.Fatalf("incremental=%v, want %v", inc, sh.incremental)
			}
			if err := m.Apply(Mutation{
				Table:   "Txns",
				Inserts: [][]value.Value{txn(1, 0, 1, 20), txn(2, 1, 2, 40)},
			}); err != nil {
				t.Fatal(err)
			}
			if err := m.Apply(Mutation{Table: "Txns", Deletes: [][]value.Value{txn(1, 0, 1, 20)}}); err != nil {
				t.Fatal(err)
			}
			check(t, m, db, reg)
			falls := metrics.Volatile("maintain.fallback.full").Load()
			if sh.incremental && falls != 0 {
				t.Fatalf("incremental shape recomputed %d times", falls)
			}
			if !sh.incremental && falls == 0 {
				t.Fatal("recompute fallback not counted")
			}
		})
	}
}

// TestSelfJoinStillRecomputes pins the per-table fallback: a self-join
// over the mutated table has delta cross terms, so it recomputes (and
// says so on the metric).
func TestSelfJoinStillRecomputes(t *testing.T) {
	m, db, reg := setup(t, "SELECT T1.Acct_Id, SUM(T2.Amount) FROM Txns T1, Txns T2 WHERE T1.Txn_Id = T2.Txn_Id GROUP BY T1.Acct_Id")
	metrics := obs.NewMetrics()
	m.Metrics = metrics
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(Mutation{Table: "Txns", Inserts: [][]value.Value{txn(1, 0, 1, 5)}}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	if metrics.Volatile("maintain.fallback.full").Load() == 0 {
		t.Fatal("self-join mutation should count a full-recompute fallback")
	}
}

// TestInsertDeleteIdentity is the delta-algebra property test:
// inserting a batch and then deleting the same batch is the identity on
// the multiplicity counts (and on the materialization).
func TestInsertDeleteIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount), COUNT(Amount), MIN(Amount), AVG(Amount) FROM Txns GROUP BY Acct_Id")
			m.Workers = workers
			if _, err := m.Track("V"); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			var seedRows [][]value.Value
			for i := 0; i < 30; i++ {
				seedRows = append(seedRows, txn(int64(i), rng.Int63n(4), rng.Int63n(5), rng.Int63n(50)))
			}
			if err := m.Insert("Txns", seedRows...); err != nil {
				t.Fatal(err)
			}
			before, _ := m.GroupCounts("V")
			beforeRel, _ := m.Materialization("V")
			beforeCopy := &engine.Relation{Attrs: beforeRel.Attrs, Tuples: beforeRel.Tuples}

			for trial := 0; trial < 25; trial++ {
				var batch [][]value.Value
				for i := 0; i < 1+rng.Intn(6); i++ {
					batch = append(batch, txn(int64(1000+trial*10+i), rng.Int63n(4), rng.Int63n(5), rng.Int63n(50)))
				}
				if err := m.Apply(Mutation{Table: "Txns", Inserts: batch}); err != nil {
					t.Fatal(err)
				}
				if err := m.Apply(Mutation{Table: "Txns", Deletes: batch}); err != nil {
					t.Fatal(err)
				}
				after, _ := m.GroupCounts("V")
				if !reflect.DeepEqual(before, after) {
					t.Fatalf("insert∘delete changed multiplicity counts:\nbefore %v\nafter  %v", before, after)
				}
				got, _ := m.Materialization("V")
				if !engine.MultisetEqual(got, beforeCopy) {
					t.Fatalf("insert∘delete changed the materialization")
				}
				check(t, m, db, reg)
			}
		})
	}
}

// TestBatchedEqualsSerialDeltas is the second delta-algebra property:
// one batched ApplyContext call is equivalent to applying the same
// mutations one at a time, at both worker counts.
func TestBatchedEqualsSerialDeltas(t *testing.T) {
	viewSQL := "SELECT Branch, SUM(Amount), COUNT(Amount), MAX(Amount) FROM Txns, Accounts WHERE Txns.Acct_Id = Accounts.Acct_Id GROUP BY Branch"
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var muts []Mutation
			var pool [][]value.Value
			ids := int64(0)
			for i := 0; i < 8; i++ {
				var ins [][]value.Value
				for j := 0; j < 1+rng.Intn(4); j++ {
					ids++
					row := txn(ids, rng.Int63n(6), rng.Int63n(5), rng.Int63n(40))
					ins = append(ins, row)
					pool = append(pool, row)
				}
				muts = append(muts, Mutation{Table: "Txns", Inserts: ins})
				if i >= 2 && len(pool) > 0 {
					// Delete a row inserted by an earlier mutation of the
					// same batch (each row at most once).
					j := rng.Intn(len(pool))
					muts = append(muts, Mutation{Table: "Txns", Deletes: [][]value.Value{pool[j]}})
					pool = append(pool[:j:j], pool[j+1:]...)
				}
			}

			mBatch, _, _ := setup(t, viewSQL)
			mBatch.Workers = workers
			if _, err := mBatch.Track("V"); err != nil {
				t.Fatal(err)
			}
			if err := mBatch.Apply(muts...); err != nil {
				t.Fatal(err)
			}

			mSerial, dbSerial, regSerial := setup(t, viewSQL)
			mSerial.Workers = workers
			if _, err := mSerial.Track("V"); err != nil {
				t.Fatal(err)
			}
			for _, mut := range muts {
				if err := mSerial.Apply(mut); err != nil {
					t.Fatal(err)
				}
			}
			check(t, mSerial, dbSerial, regSerial)

			got, _ := mBatch.Materialization("V")
			want, _ := mSerial.Materialization("V")
			if !engine.MultisetEqual(got, want) {
				t.Fatalf("batched vs serial deltas diverged:\nbatched:\n%s\nserial:\n%s", got.Sorted(), want.Sorted())
			}
			cb, _ := mBatch.GroupCounts("V")
			cs, _ := mSerial.GroupCounts("V")
			if !reflect.DeepEqual(cb, cs) {
				t.Fatalf("batched vs serial multiplicities diverged: %v vs %v", cb, cs)
			}
		})
	}
}

// TestSnapshotIsolationConcurrentRefresh asserts that a reader pinning
// an engine.Snapshot never observes a half-applied batch: on every
// pinned version, the materialization bag-equals a direct evaluation of
// the view definition over the same pinned base tables. The refresher
// goroutine is joined before the test returns (waitleak-clean).
func TestSnapshotIsolationConcurrentRefresh(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount), COUNT(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10), txn(2, 1, 1, 20)); err != nil {
		t.Fatal(err)
	}
	v, _ := reg.Get("V")

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		id := int64(100)
		var live [][]value.Value
		for i := 0; i < 120; i++ {
			var mut Mutation
			mut.Table = "Txns"
			if len(live) > 4 && rng.Intn(2) == 0 {
				j := rng.Intn(len(live))
				mut.Deletes = [][]value.Value{live[j]}
				live = append(live[:j:j], live[j+1:]...)
			} else {
				id++
				row := txn(id, rng.Int63n(4), rng.Int63n(5), rng.Int63n(30))
				mut.Inserts = [][]value.Value{row}
				live = append(live, row)
			}
			if err := m.Apply(mut); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				snap := db.Snapshot()
				pinned, ok := snap.Relation("V")
				if !ok {
					errs <- fmt.Errorf("snapshot lost the materialization")
					return
				}
				ev := engine.NewEvaluator(db, nil)
				ev.Store = snap
				direct, err := ev.Exec(v.Def)
				if err != nil {
					errs <- err
					return
				}
				if !engine.MultisetEqual(pinned, direct) {
					errs <- fmt.Errorf("reader observed a half-applied batch:\npinned:\n%s\ndirect:\n%s", pinned.Sorted(), direct.Sorted())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	check(t, m, db, reg)
}

// TestFaultInjectMaintainAtomicBatch arms the cancellation injector at
// the maintenance delta-application site for every k until the batch
// survives, asserting the exact-state-or-clean-typed-error contract:
// an aborted batch leaves both the base table and the materialization
// untouched.
func TestFaultInjectMaintainAtomicBatch(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount), MIN(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10), txn(2, 1, 1, 20), txn(3, 1, 2, 30)); err != nil {
		t.Fatal(err)
	}
	mut := Mutation{
		Table:   "Txns",
		Deletes: [][]value.Value{txn(2, 1, 1, 20)},
		Inserts: [][]value.Value{txn(4, 2, 1, 40), txn(5, 0, 2, 50)},
	}
	for k := int64(1); ; k++ {
		if k > 10_000 {
			t.Fatal("injector never exhausted")
		}
		baseBefore, _ := db.Get("Txns")
		viewBefore, _ := m.Materialization("V")
		in := faultinject.New(faultinject.SiteMaintain, k)
		ctx, cancel := in.Arm(context.Background())
		err := m.ApplyContext(ctx, mut)
		cancel()
		if err == nil {
			if !in.Fired() {
				// Injection exhausted without firing: the batch ran
				// clean; verify and stop.
				check(t, m, db, reg)
				return
			}
			t.Fatal("batch reported success after the injector fired mid-batch")
		}
		if !budget.IsCanceled(err) {
			t.Fatalf("fault surfaced as untyped error: %v", err)
		}
		baseAfter, _ := db.Get("Txns")
		viewAfter, _ := m.Materialization("V")
		if !engine.MultisetEqual(baseBefore, baseAfter) || !engine.MultisetEqual(viewBefore, viewAfter) {
			t.Fatalf("aborted batch left partial state at k=%d", k)
		}
		check(t, m, db, reg)
	}
}
