package maintain

import (
	"math/rand"
	"testing"

	"aggview/internal/engine"
	"aggview/internal/ir"
	"aggview/internal/value"
)

func src() ir.MapSource {
	return ir.MapSource{
		"Txns":     {"Txn_Id", "Acct_Id", "Day", "Amount"},
		"Accounts": {"Acct_Id", "Branch"},
	}
}

func setup(t *testing.T, viewSQL string) (*Maintainer, *engine.DB, *ir.Registry) {
	t.Helper()
	db := engine.NewDB()
	db.Put("Txns", engine.NewRelation("Txn_Id", "Acct_Id", "Day", "Amount"))
	accounts := engine.NewRelation("Acct_Id", "Branch")
	for a := int64(0); a < 6; a++ {
		accounts.Add(value.Int(a), value.Int(a%2))
	}
	db.Put("Accounts", accounts)
	reg := ir.NewRegistry()
	v, err := ir.NewViewDef("V", ir.MustBuild(viewSQL, src()))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(v); err != nil {
		t.Fatal(err)
	}
	return New(db, reg), db, reg
}

// check verifies the maintained materialization equals a fresh
// evaluation of the definition.
func check(t *testing.T, m *Maintainer, db *engine.DB, reg *ir.Registry) {
	t.Helper()
	got, ok := m.Materialization("V")
	if !ok {
		t.Fatal("view not tracked")
	}
	v, _ := reg.Get("V")
	want, err := engine.NewEvaluator(db, nil).Exec(v.Def)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.MultisetEqual(got, want) {
		t.Fatalf("maintained view diverged\nmaintained:\n%s\nrecomputed:\n%s", got.Sorted(), want.Sorted())
	}
}

func txn(id, acct, day, amount int64) []value.Value {
	return []value.Value{value.Int(id), value.Int(acct), value.Int(day), value.Int(amount)}
}

func TestIncrementalSumCountMinMax(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount), COUNT(Amount), MIN(Amount), MAX(Amount) FROM Txns GROUP BY Acct_Id")
	inc, err := m.Track("V")
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("SUM/COUNT/MIN/MAX view should be incremental")
	}
	rng := rand.New(rand.NewSource(3))
	id := int64(0)
	for batch := 0; batch < 10; batch++ {
		var rows [][]value.Value
		for i := 0; i < 1+rng.Intn(5); i++ {
			rows = append(rows, txn(id, int64(rng.Intn(4)), int64(1+rng.Intn(5)), int64(rng.Intn(100)-20)))
			id++
		}
		if err := m.Insert("Txns", rows...); err != nil {
			t.Fatal(err)
		}
		check(t, m, db, reg)
	}
}

func TestIncrementalJoinView(t *testing.T) {
	m, db, reg := setup(t, "SELECT Branch, SUM(Amount), COUNT(Amount) FROM Txns, Accounts WHERE Txns.Acct_Id = Accounts.Acct_Id GROUP BY Branch")
	inc, err := m.Track("V")
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("join view with mergeable aggregates should be incremental")
	}
	for i := int64(0); i < 20; i++ {
		if err := m.Insert("Txns", txn(i, i%6, 1, i*3)); err != nil {
			t.Fatal(err)
		}
	}
	check(t, m, db, reg)
	// New groups appear when a new branch's account first transacts.
	got, _ := m.Materialization("V")
	if got.Len() != 2 {
		t.Fatalf("expected 2 branch groups, got %d", got.Len())
	}
}

func TestConjunctiveViewAppends(t *testing.T) {
	m, db, reg := setup(t, "SELECT Txn_Id, Amount FROM Txns WHERE Amount > 10")
	inc, err := m.Track("V")
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("conjunctive view should maintain by appending deltas")
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 5), txn(2, 0, 1, 50)); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ := m.Materialization("V")
	if got.Len() != 1 {
		t.Fatalf("only the >10 row should appear: %s", got)
	}
}

func TestAvgIsIncremental(t *testing.T) {
	// Counting maintenance carries SUM and multiplicity per group, so
	// AVG — non-mergeable under v1's value-merge scheme — now absorbs
	// deltas incrementally.
	m, db, reg := setup(t, "SELECT Acct_Id, AVG(Amount) FROM Txns GROUP BY Acct_Id")
	inc, err := m.Track("V")
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("AVG views should maintain incrementally under counting")
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10), txn(2, 0, 1, 20)); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ := m.Materialization("V")
	if got.Len() != 1 || got.Tuples[0][1].AsFloat() != 15 {
		t.Fatalf("AVG delta wrong: %s", got)
	}
	if err := m.Apply(Mutation{Table: "Txns", Deletes: [][]value.Value{txn(1, 0, 1, 10)}}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ = m.Materialization("V")
	if got.Len() != 1 || got.Tuples[0][1].AsFloat() != 20 {
		t.Fatalf("AVG delete delta wrong: %s", got)
	}
}

func TestHavingFallsBackToRecompute(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, COUNT(Amount) FROM Txns GROUP BY Acct_Id HAVING COUNT(Amount) > 1")
	inc, err := m.Track("V")
	if err != nil {
		t.Fatal(err)
	}
	if inc {
		t.Fatal("HAVING views are not insert-monotone")
	}
	if err := m.Insert("Txns", txn(1, 0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	if err := m.Insert("Txns", txn(2, 0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
	got, _ := m.Materialization("V")
	if got.Len() != 1 {
		t.Fatalf("group should appear once COUNT exceeds 1: %s", got)
	}
}

func TestSelfJoinRecomputes(t *testing.T) {
	m, db, reg := setup(t, "SELECT t.Acct_Id, COUNT(u.Amount) FROM Txns t, Txns u WHERE t.Acct_Id = u.Acct_Id GROUP BY t.Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	// The table occurs twice: deltas have cross terms, so the maintainer
	// must recompute — and stay correct.
	for i := int64(0); i < 6; i++ {
		if err := m.Insert("Txns", txn(i, i%2, 1, 10)); err != nil {
			t.Fatal(err)
		}
		check(t, m, db, reg)
	}
}

func TestUntrackedTableUnaffected(t *testing.T) {
	m, db, reg := setup(t, "SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	// Inserting into Accounts must not disturb the Txns-only view.
	if err := m.Insert("Accounts", []value.Value{value.Int(99), value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	check(t, m, db, reg)
}

func TestErrors(t *testing.T) {
	m, _, _ := setup(t, "SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("Nope"); err == nil {
		t.Error("unknown view should fail")
	}
	if err := m.Insert("Nope", txn(1, 1, 1, 1)); err == nil {
		t.Error("unknown table should fail")
	}
	if err := m.Insert("Txns", []value.Value{value.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, ok := m.Materialization("V"); ok {
		t.Error("untracked view should not report a materialization")
	}
	if _, ok := m.IsIncremental("V"); ok {
		t.Error("untracked view should not report incrementality")
	}
}

func TestIsIncremental(t *testing.T) {
	m, _, _ := setup(t, "SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id")
	if _, err := m.Track("V"); err != nil {
		t.Fatal(err)
	}
	inc, ok := m.IsIncremental("V")
	if !ok || !inc {
		t.Error("tracked SUM view should be incremental")
	}
}

// Long randomized soak: interleave inserts into both tables across
// several tracked shapes and compare against recomputation at each step.
func TestRandomizedSoak(t *testing.T) {
	shapes := []string{
		"SELECT Acct_Id, Day, SUM(Amount), COUNT(Amount) FROM Txns GROUP BY Acct_Id, Day",
		"SELECT Branch, MIN(Amount), MAX(Amount), COUNT(Amount) FROM Txns, Accounts WHERE Txns.Acct_Id = Accounts.Acct_Id GROUP BY Branch",
		"SELECT Day, COUNT(Txn_Id) FROM Txns WHERE Amount > 0 GROUP BY Day",
	}
	for _, sql := range shapes {
		m, db, reg := setup(t, sql)
		if _, err := m.Track("V"); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for step := int64(0); step < 40; step++ {
			if rng.Intn(5) == 0 {
				if err := m.Insert("Accounts", []value.Value{value.Int(100 + step), value.Int(step % 3)}); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := m.Insert("Txns", txn(step, int64(rng.Intn(6)), int64(1+rng.Intn(3)), int64(rng.Intn(60)-10))); err != nil {
					t.Fatal(err)
				}
			}
			check(t, m, db, reg)
		}
	}
}
