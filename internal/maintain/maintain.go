// Package maintain keeps materialized aggregation views consistent
// under base-table inserts. The paper treats view maintenance as
// orthogonal ([BLT86, GMS93]) but its motivating scenarios — warehouse
// summary tables, chronicle ledgers — assume somebody maintains the
// materializations; this package is that somebody for the append-only
// case.
//
// A tracked view's delta under an insertion into one base table is the
// view's definition evaluated with that table replaced by the inserted
// rows (joins are bilinear in their inputs, so this is exact when the
// table occurs once in the FROM clause). Delta groups merge into the
// materialization: SUM and COUNT add, MIN and MAX combine — all
// insert-monotone. Views outside the incrementally maintainable class
// (AVG outputs, HAVING, DISTINCT, self-joins over the changed table)
// fall back to full recomputation, so Insert is always correct.
package maintain

import (
	"context"
	"fmt"
	"strings"

	"aggview/internal/engine"
	"aggview/internal/ir"
	"aggview/internal/value"
)

// Maintainer propagates base-table inserts to tracked materializations.
type Maintainer struct {
	db    *engine.DB
	views *ir.Registry

	tracked map[string]*state
}

// state is one tracked view's materialization index.
type state struct {
	def *ir.ViewDef
	// incremental is false when the view needs full recomputation on
	// every change.
	incremental bool
	// groupPos lists the select positions holding grouping columns;
	// aggPos the positions holding mergeable aggregates.
	groupPos []int
	aggs     []aggOut
	// rel is the materialization stored in the DB; index maps a group
	// key to its tuple position in rel.
	rel   *engine.Relation
	index map[string]int
}

type aggOut struct {
	pos int
	fn  ir.AggFunc
}

// New builds a maintainer over a database and view registry.
func New(db *engine.DB, views *ir.Registry) *Maintainer {
	return &Maintainer{db: db, views: views, tracked: map[string]*state{}}
}

// Track materializes the named view (if needed) and begins maintaining
// it. It reports whether maintenance is incremental or recompute-based.
// Track runs unbounded; use TrackContext to bound the materialization.
func (m *Maintainer) Track(name string) (incremental bool, err error) {
	return m.TrackContext(context.Background(), name)
}

// TrackContext is Track under a context: cancellation and deadline
// expiry abort the initial materialization with a typed error.
func (m *Maintainer) TrackContext(ctx context.Context, name string) (incremental bool, err error) {
	v, ok := m.views.Get(name)
	if !ok {
		return false, fmt.Errorf("maintain: unknown view %q", name)
	}
	st := &state{def: v}
	st.incremental = classify(v.Def, st)
	rel, err := engine.NewEvaluator(m.db, m.views).ExecContext(ctx, v.Def)
	if err != nil {
		return false, err
	}
	rel.Attrs = append([]string{}, v.OutCols...)
	m.db.Put(v.Name, rel)
	st.rel = rel
	if st.incremental {
		st.buildIndex()
	}
	m.tracked[strings.ToLower(name)] = st
	return st.incremental, nil
}

// classify decides whether the view is incrementally maintainable and
// fills the select-position metadata.
func classify(def *ir.Query, st *state) bool {
	if def.Distinct || len(def.Having) > 0 || !def.IsAggregationQuery() {
		// Conjunctive views would need multiset appends of the delta —
		// expressible, but the engine stores views as plain relations, so
		// append-only conjunctive views are handled below via deltas too.
		// Distinct/HAVING views are not insert-monotone.
		if def.Distinct || len(def.Having) > 0 {
			return false
		}
	}
	group := map[ir.ColID]bool{}
	for _, g := range def.GroupBy {
		group[g] = true
	}
	for pos, it := range def.Select {
		switch x := it.Expr.(type) {
		case *ir.ColRef:
			if !group[x.Col] && def.IsAggregationQuery() {
				return false
			}
			st.groupPos = append(st.groupPos, pos)
		case *ir.Agg:
			if x.Star {
				st.aggs = append(st.aggs, aggOut{pos: pos, fn: ir.AggCount})
				continue
			}
			switch x.Func {
			case ir.AggSum, ir.AggCount, ir.AggMin, ir.AggMax:
				st.aggs = append(st.aggs, aggOut{pos: pos, fn: x.Func})
			default:
				return false // AVG is not mergeable without auxiliary state
			}
		default:
			return false
		}
	}
	return true
}

func (st *state) buildIndex() {
	st.index = make(map[string]int, len(st.rel.Tuples))
	for i, t := range st.rel.Tuples {
		st.index[st.groupKey(t)] = i
	}
}

func (st *state) groupKey(tuple []value.Value) string {
	key := ""
	for _, p := range st.groupPos {
		key += tuple[p].Key() + "\x00"
	}
	return key
}

// Insert appends rows to a base table and updates every tracked view
// that depends on it. Insert runs unbounded; use InsertContext to bound
// the delta evaluations and recomputations.
func (m *Maintainer) Insert(table string, rows ...[]value.Value) error {
	return m.InsertContext(context.Background(), table, rows...)
}

// InsertContext is Insert under a context: cancellation and deadline
// expiry abort the delta evaluation or recomputation with a typed
// error. An abort between the view update and the base append leaves
// the materializations untouched (deltas merge only after their
// evaluation succeeds), so a canceled insert is a clean no-op.
func (m *Maintainer) InsertContext(ctx context.Context, table string, rows ...[]value.Value) error {
	rel, ok := m.db.Get(table)
	if !ok {
		return fmt.Errorf("maintain: unknown table %q", table)
	}
	for _, r := range rows {
		if len(r) != len(rel.Attrs) {
			return fmt.Errorf("maintain: arity mismatch inserting into %s", table)
		}
	}
	// Delta relation before the base table changes (the definition's
	// other occurrences must see the OLD state plus cross terms; with a
	// single occurrence, old-vs-new does not matter for the other
	// tables).
	delta := &engine.Relation{Attrs: append([]string{}, rel.Attrs...), Tuples: rows}

	for _, st := range m.tracked {
		occurrences := 0
		for _, t := range st.def.Def.Tables {
			if strings.EqualFold(t.Source, table) {
				occurrences++
			}
		}
		if occurrences == 0 {
			continue
		}
		if !st.incremental || occurrences > 1 {
			// Self-join over the changed table: the delta has cross
			// terms; recompute after the base insert lands.
			defer func(st *state) {
				_ = st // recomputed below, after the base rows are added
			}(st)
			continue
		}
		if err := m.applyDelta(ctx, st, table, delta); err != nil {
			return err
		}
	}

	rel.Tuples = append(rel.Tuples, rows...)
	// The columnar image's row-count freshness check would catch this
	// append on the next scan, but invalidating explicitly also fires
	// the DB's invalidation hook, which the server's plan cache relies
	// on to observe every base-table mutation.
	m.db.Invalidate(table)

	// Recompute the non-incremental dependents now that the base table
	// includes the new rows.
	for _, st := range m.tracked {
		occurrences := 0
		for _, t := range st.def.Def.Tables {
			if strings.EqualFold(t.Source, table) {
				occurrences++
			}
		}
		if occurrences == 0 || (st.incremental && occurrences == 1) {
			continue
		}
		if err := m.recompute(ctx, st); err != nil {
			return err
		}
	}
	return nil
}

// applyDelta evaluates the view definition with the changed table
// replaced by the delta rows and merges the result into the
// materialization.
func (m *Maintainer) applyDelta(ctx context.Context, st *state, table string, delta *engine.Relation) error {
	// Shadow DB: same relations, with `table` bound to the delta.
	shadow := engine.NewDB()
	for _, t := range st.def.Def.Tables {
		if strings.EqualFold(t.Source, table) {
			shadow.Put(t.Source, delta)
			continue
		}
		if rel, ok := m.db.Get(t.Source); ok {
			shadow.Put(t.Source, rel)
		}
	}
	deltaRes, err := engine.NewEvaluator(shadow, m.views).ExecContext(ctx, st.def.Def)
	if err != nil {
		return err
	}
	if !st.def.Def.IsAggregationQuery() {
		// Conjunctive view: the delta rows simply append.
		st.rel.Tuples = append(st.rel.Tuples, deltaRes.Tuples...)
		return nil
	}
	for _, row := range deltaRes.Tuples {
		key := st.groupKey(row)
		idx, ok := st.index[key]
		if !ok {
			tuple := append([]value.Value{}, row...)
			st.index[key] = len(st.rel.Tuples)
			st.rel.Tuples = append(st.rel.Tuples, tuple)
			continue
		}
		old := st.rel.Tuples[idx]
		for _, a := range st.aggs {
			merged, err := mergeAgg(a.fn, old[a.pos], row[a.pos])
			if err != nil {
				return err
			}
			old[a.pos] = merged
		}
	}
	// Aggregate merges mutate tuples in place without changing the row
	// count, which the DB's columnar-image freshness check cannot see.
	m.db.Invalidate(st.def.Name)
	return nil
}

func mergeAgg(fn ir.AggFunc, old, delta value.Value) (value.Value, error) {
	switch fn {
	case ir.AggSum, ir.AggCount:
		return value.Add(old, delta)
	case ir.AggMin:
		if value.Compare(delta, old) < 0 {
			return delta, nil
		}
		return old, nil
	case ir.AggMax:
		if value.Compare(delta, old) > 0 {
			return delta, nil
		}
		return old, nil
	default:
		return value.Value{}, fmt.Errorf("maintain: aggregate %v is not mergeable", fn)
	}
}

// recompute fully re-evaluates a tracked view.
func (m *Maintainer) recompute(ctx context.Context, st *state) error {
	rel, err := engine.NewEvaluator(m.db, m.views).ExecContext(ctx, st.def.Def)
	if err != nil {
		return err
	}
	st.rel.Attrs = append([]string{}, st.def.OutCols...)
	st.rel.Tuples = rel.Tuples
	// The replacement may keep the old row count, so drop the cached
	// columnar image explicitly.
	m.db.Invalidate(st.def.Name)
	if st.incremental {
		st.buildIndex()
	}
	return nil
}

// Materialization returns the maintained relation of a tracked view.
func (m *Maintainer) Materialization(name string) (*engine.Relation, bool) {
	st, ok := m.tracked[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return st.rel, true
}

// IsIncremental reports whether a tracked view merges deltas (true) or
// recomputes (false).
func (m *Maintainer) IsIncremental(name string) (bool, bool) {
	st, ok := m.tracked[strings.ToLower(name)]
	if !ok {
		return false, false
	}
	return st.incremental, true
}
