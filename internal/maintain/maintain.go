// Package maintain keeps materialized aggregation views consistent
// under base-table inserts, deletes and updates. The paper treats view
// maintenance as orthogonal ([BLT86, GMS93]) but its motivating
// scenarios — warehouse summary tables, chronicle ledgers — assume
// somebody maintains the materializations; this package is that
// somebody.
//
// Maintenance follows the counting algorithm of GMS93. Each group of a
// tracked aggregation view carries a multiplicity count n (the number
// of contributing joined rows) plus per-aggregate auxiliary state:
// running SUM totals, a float running total for AVG, and a value →
// multiplicity multiset for MIN/MAX. A mutation batch against one base
// table is evaluated as two delta queries — the view definition with
// that table bound to the deleted rows, then to the inserted rows —
// which is exact when the table occurs exactly once in the definition
// (joins are bilinear). Deleted contributions subtract: n decreases,
// sums decrease, and a MIN/MAX whose extremum's multiplicity reaches
// zero is re-derived by re-scanning the group's surviving value
// multiset. A group whose n reaches zero leaves the materialization.
// Views outside the incrementally maintainable class (DISTINCT, HAVING,
// self-joins over the changed table, MIN/MAX over non-column
// arguments, dependence through a nested view) fall back to full
// recomputation — counted on the `maintain.fallback.full` metric — so
// every mutation is always correct.
//
// Batches apply atomically: every delta evaluation and recomputation
// runs first, against the pre-mutation state (plus previously staged
// tables of the same batch); only when all of them have succeeded are
// the new base relations and materializations installed, in one
// engine.DB.Apply critical section. A cancellation — including one
// injected at faultinject.SiteMaintain — therefore leaves the database
// exactly as it was. Readers that pin an engine.Snapshot see either
// none or all of a batch, never a half-applied mix; maintained
// materializations install silently (DB.Refresh semantics), so warm
// prepared plans over a view that absorbed its delta are not evicted.
package maintain

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"aggview/internal/budget"
	"aggview/internal/engine"
	"aggview/internal/faultinject"
	"aggview/internal/ir"
	"aggview/internal/obs"
	"aggview/internal/value"
)

// Maintainer propagates base-table mutations to tracked
// materializations.
type Maintainer struct {
	db    *engine.DB
	views *ir.Registry

	// Metrics, when set, observes maintenance decisions:
	// maintain.fallback.full counts full recomputations (shape or
	// self-join fallbacks), maintain.batch.apply counts committed
	// batches, maintain.delta.rows counts delta rows merged.
	Metrics *obs.Metrics
	// Workers sizes the worker pools of the delta and recompute
	// evaluations (0 = serial), like engine.Evaluator.Workers.
	Workers int

	mu      sync.Mutex
	tracked map[string]*state
}

// Mutation is one base table's part of an atomic batch: rows to remove
// (matched as a multiset against the current tuples) and rows to
// append.
type Mutation struct {
	Table   string
	Deletes [][]value.Value
	Inserts [][]value.Value
}

// state is one tracked view's counting state.
type state struct {
	def *ir.ViewDef
	// incremental is false when the view's shape needs full
	// recomputation on every change (DISTINCT, HAVING, non-column
	// MIN/MAX arguments, lossy group keys).
	incremental bool
	// conjunctive marks a view maintained as a plain bag of projected
	// rows (no aggregation).
	conjunctive bool
	// groupPos lists the select positions holding grouping columns;
	// aggs the positions holding aggregate outputs.
	groupPos []int
	aggs     []aggOut
	// aux is the main delta query: group columns, SUM arguments, and a
	// trailing COUNT(*) for the multiplicity. sumAt in each aggOut
	// indexes into its select list.
	aux *ir.Query
	nAt int // position of COUNT(*) in aux's select
	// direct counts direct FROM occurrences per lowercased base table;
	// trans marks every transitive base table; viaView marks tables
	// whose dependence flows through a nested view (delta-unsafe).
	direct  map[string]int
	trans   map[string]bool
	viaView map[string]bool
	depth   int // nesting depth over other tracked views, for commit order
	// groups is the counting state, keyed by group key.
	groups map[string]*group
	// rel is the installed materialization; index maps a group key to
	// its tuple position in rel (aggregation views only).
	rel   *engine.Relation
	index map[string]int
}

type aggOut struct {
	pos   int // select position in the view definition
	fn    ir.AggFunc
	sumAt int       // position of SUM(arg) in aux's select; -1 if unused
	mm    *ir.Query // MIN/MAX value-multiplicity delta query; nil otherwise
}

// group is one group's multiplicity and auxiliary aggregate state.
type group struct {
	groupVals []value.Value
	n         int64
	aggs      []aggState
}

// aggState is the auxiliary state of one aggregate output in one group.
type aggState struct {
	sum  value.Value         // SUM: running total, typed like the engine's fold
	avg  float64             // AVG: running float total (mirrors engine accum)
	vals map[string]*mmEntry // MIN/MAX: value multiset
}

type mmEntry struct {
	v value.Value
	n int64
}

// New builds a maintainer over a database and view registry.
func New(db *engine.DB, views *ir.Registry) *Maintainer {
	return &Maintainer{db: db, views: views, tracked: map[string]*state{}}
}

// evaluator builds a fresh engine evaluator over the live database.
func (m *Maintainer) evaluator() *engine.Evaluator {
	ev := engine.NewEvaluator(m.db, m.views)
	ev.Workers = m.Workers
	return ev
}

// Track materializes the named view (if needed) and begins maintaining
// it. It reports whether maintenance is incremental or recompute-based.
// Track runs unbounded; use TrackContext to bound the materialization.
func (m *Maintainer) Track(name string) (incremental bool, err error) {
	return m.TrackContext(context.Background(), name)
}

// TrackContext is Track under a context: cancellation and deadline
// expiry abort the initial materialization with a typed error.
func (m *Maintainer) TrackContext(ctx context.Context, name string) (incremental bool, err error) {
	v, ok := m.views.Get(name)
	if !ok {
		return false, fmt.Errorf("maintain: unknown view %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &state{def: v}
	st.incremental = classify(v.Def, st)
	st.resolveSources(m.views, m.trackedDepthLocked())
	rel, err := m.evaluator().ExecContext(ctx, v.Def)
	if err != nil {
		return false, err
	}
	rel.Attrs = append([]string{}, v.OutCols...)
	st.rel = rel
	if st.incremental && !st.conjunctive {
		buildAux(st)
		if err := m.seedGroups(ctx, st); err != nil {
			return false, err
		}
		st.buildIndex()
	}
	m.db.Put(v.Name, rel)
	m.tracked[strings.ToLower(name)] = st
	return st.incremental, nil
}

// trackedDepthLocked returns the nesting depth of each tracked view.
func (m *Maintainer) trackedDepthLocked() map[string]int {
	d := make(map[string]int, len(m.tracked))
	for k, st := range m.tracked {
		d[k] = st.depth
	}
	return d
}

// classify decides whether the view's shape admits counting deltas and
// fills the select-position metadata.
func classify(def *ir.Query, st *state) bool {
	if def.Distinct || len(def.Having) > 0 {
		// Neither is delta-monotone: a delete can resurrect a
		// suppressed duplicate or re-admit a filtered group.
		return false
	}
	if !def.IsAggregationQuery() {
		st.conjunctive = true
		return true
	}
	grouped := map[ir.ColID]bool{}
	for _, g := range def.GroupBy {
		grouped[g] = true
	}
	selected := map[ir.ColID]bool{}
	for pos, it := range def.Select {
		switch x := it.Expr.(type) {
		case *ir.ColRef:
			if !grouped[x.Col] {
				return false
			}
			selected[x.Col] = true
			st.groupPos = append(st.groupPos, pos)
		case *ir.Agg:
			fn := x.Func
			if x.Star {
				fn = ir.AggCount
			}
			switch fn {
			case ir.AggSum, ir.AggCount, ir.AggAvg:
				st.aggs = append(st.aggs, aggOut{pos: pos, fn: fn, sumAt: -1})
			case ir.AggMin, ir.AggMax:
				if _, ok := x.Arg.(*ir.ColRef); !ok {
					// The value-multiset delta query groups by the
					// argument, and GROUP BY holds columns only.
					return false
				}
				st.aggs = append(st.aggs, aggOut{pos: pos, fn: fn, sumAt: -1})
			default:
				return false
			}
		default:
			return false
		}
	}
	for _, g := range def.GroupBy {
		if !selected[g] {
			// A grouping column missing from the select list makes the
			// projected group key lossy: two distinct groups would
			// collide in the materialization index.
			return false
		}
	}
	return true
}

// resolveSources fills the direct/transitive base-table maps, expanding
// FROM sources that name registry views, and computes the nesting depth
// over already-tracked views.
func (st *state) resolveSources(views *ir.Registry, trackedDepth map[string]int) {
	st.direct = map[string]int{}
	st.trans = map[string]bool{}
	st.viaView = map[string]bool{}
	var expand func(q *ir.Query, nested bool, seen map[string]bool)
	expand = func(q *ir.Query, nested bool, seen map[string]bool) {
		for _, t := range q.Tables {
			key := strings.ToLower(t.Source)
			if v, ok := views.Get(t.Source); ok {
				if !nested {
					if d, tracked := trackedDepth[key]; tracked && d+1 > st.depth {
						st.depth = d + 1
					} else if st.depth == 0 {
						st.depth = 1
					}
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				inner := map[string]bool{}
				for k := range seen {
					inner[k] = true
				}
				expandNested(v.Def, st, views, inner)
				continue
			}
			st.trans[key] = true
			if nested {
				st.viaView[key] = true
			} else {
				st.direct[key]++
			}
		}
	}
	expand(st.def.Def, false, map[string]bool{})
}

// expandNested marks every base table reachable from a nested view
// definition as view-mediated (delta-unsafe).
func expandNested(q *ir.Query, st *state, views *ir.Registry, seen map[string]bool) {
	for _, t := range q.Tables {
		key := strings.ToLower(t.Source)
		if v, ok := views.Get(t.Source); ok {
			if seen[key] {
				continue
			}
			seen[key] = true
			expandNested(v.Def, st, views, seen)
			continue
		}
		st.trans[key] = true
		st.viaView[key] = true
	}
}

// buildAux constructs the delta queries: the main one (group columns,
// SUM arguments, COUNT(*)) and one value-multiplicity query per MIN/MAX
// output.
func buildAux(st *state) {
	def := st.def.Def
	base := def.Clone()
	base.Distinct = false
	base.Having = nil

	var sel []ir.SelectItem
	for _, p := range st.groupPos {
		sel = append(sel, ir.SelectItem{Expr: base.Select[p].Expr})
	}
	for i := range st.aggs {
		a := &st.aggs[i]
		src := base.Select[a.pos].Expr.(*ir.Agg)
		switch a.fn {
		case ir.AggSum, ir.AggAvg:
			a.sumAt = len(sel)
			sel = append(sel, ir.SelectItem{Expr: &ir.Agg{Func: ir.AggSum, Arg: src.Arg}})
		case ir.AggMin, ir.AggMax:
			arg := src.Arg.(*ir.ColRef)
			mm := def.Clone()
			mm.Distinct = false
			mm.Having = nil
			var mmSel []ir.SelectItem
			for _, p := range st.groupPos {
				mmSel = append(mmSel, ir.SelectItem{Expr: mm.Select[p].Expr})
			}
			mmSel = append(mmSel, ir.SelectItem{Expr: &ir.ColRef{Col: arg.Col}})
			mmSel = append(mmSel, ir.SelectItem{Expr: &ir.Agg{Func: ir.AggCount, Star: true}})
			mm.Select = mmSel
			inGroup := false
			for _, g := range mm.GroupBy {
				if g == arg.Col {
					inGroup = true
				}
			}
			if !inGroup {
				mm.GroupBy = append(mm.GroupBy, arg.Col)
			}
			a.mm = mm
		}
	}
	st.nAt = len(sel)
	sel = append(sel, ir.SelectItem{Expr: &ir.Agg{Func: ir.AggCount, Star: true}})
	base.Select = sel
	st.aux = base
}

// seedGroups initializes the counting state by running the delta
// queries against the full current database.
func (m *Maintainer) seedGroups(ctx context.Context, st *state) error {
	st.groups = map[string]*group{}
	ev := m.evaluator()
	main, err := ev.ExecContext(ctx, st.aux)
	if err != nil {
		return err
	}
	k := len(st.groupPos)
	for _, row := range main.Tuples {
		g := &group{groupVals: append([]value.Value{}, row[:k]...), aggs: make([]aggState, len(st.aggs))}
		g.n = row[st.nAt].AsInt()
		for i, a := range st.aggs {
			if a.sumAt >= 0 {
				g.aggs[i].sum = row[a.sumAt]
				g.aggs[i].avg = row[a.sumAt].AsFloat()
			}
		}
		st.groups[keyOf(row[:k])] = g
	}
	for i, a := range st.aggs {
		if a.mm == nil {
			continue
		}
		res, err := ev.ExecContext(ctx, a.mm)
		if err != nil {
			return err
		}
		for _, row := range res.Tuples {
			g, ok := st.groups[keyOf(row[:k])]
			if !ok {
				return fmt.Errorf("maintain: inconsistent seed for view %s", st.def.Name)
			}
			if g.aggs[i].vals == nil {
				g.aggs[i].vals = map[string]*mmEntry{}
			}
			v := row[k]
			g.aggs[i].vals[v.Key()] = &mmEntry{v: v, n: row[k+1].AsInt()}
		}
	}
	return nil
}

func keyOf(vals []value.Value) string {
	key := ""
	for _, v := range vals {
		key += v.Key() + "\x00"
	}
	return key
}

func (st *state) buildIndex() {
	st.index = make(map[string]int, len(st.rel.Tuples))
	for i, t := range st.rel.Tuples {
		st.index[st.groupKey(t)] = i
	}
}

func (st *state) groupKey(tuple []value.Value) string {
	key := ""
	for _, p := range st.groupPos {
		key += tuple[p].Key() + "\x00"
	}
	return key
}

// Insert appends rows to a base table and updates every tracked view
// that depends on it. Insert runs unbounded; use InsertContext to bound
// the delta evaluations and recomputations.
func (m *Maintainer) Insert(table string, rows ...[]value.Value) error {
	return m.InsertContext(context.Background(), table, rows...)
}

// InsertContext is Insert under a context; it is an insert-only batch.
func (m *Maintainer) InsertContext(ctx context.Context, table string, rows ...[]value.Value) error {
	return m.ApplyContext(ctx, Mutation{Table: table, Inserts: rows})
}

// Apply runs an unbounded mutation batch; use ApplyContext to bound it.
func (m *Maintainer) Apply(muts ...Mutation) error {
	return m.ApplyContext(context.Background(), muts...)
}

// pending is one tracked view's staged outcome within a batch.
type pending struct {
	st        *state
	recompute bool
	groups    map[string]*group // cloned map; touched groups deep-copied
	touched   map[string]bool
	copied    map[string]bool
	conjAdd   [][]value.Value
	conjDel   map[string]int64
	newRel    *engine.Relation
	newIndex  map[string]int
	newGroups map[string]*group
}

// ApplyContext applies an atomic mutation batch: every delta and
// recomputation is evaluated against the pre-batch state (plus earlier
// tables staged within the same batch), and only if all evaluations
// succeed are the new base relations and materializations installed in
// one atomic engine commit. On any error — including a cancellation
// injected at faultinject.SiteMaintain — the database is left exactly
// as it was.
//
// Base-table installs fire the DB invalidation hook (plans scanning the
// table are stale); maintained materializations install silently, so
// warm plans over a view that absorbed its delta survive.
func (m *Maintainer) ApplyContext(ctx context.Context, muts ...Mutation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inj := faultinject.From(ctx)

	// Stage base-table replacements (validating arity and delete
	// multiset membership) without installing anything.
	overlay := map[string]*engine.Relation{}
	order := make([]string, 0, len(muts))
	deltaRows := 0
	for _, mut := range muts {
		key := strings.ToLower(mut.Table)
		rel, ok := overlay[key]
		if !ok {
			if rel, ok = m.db.Get(mut.Table); !ok {
				return fmt.Errorf("maintain: unknown table %q", mut.Table)
			}
		}
		for _, r := range append(append([][]value.Value{}, mut.Deletes...), mut.Inserts...) {
			if len(r) != len(rel.Attrs) {
				return fmt.Errorf("maintain: arity mismatch inserting into %s", mut.Table)
			}
		}
		newTuples, err := removeBag(rel.Tuples, mut.Deletes, mut.Table)
		if err != nil {
			return err
		}
		newTuples = append(newTuples, mut.Inserts...)
		overlay[key] = &engine.Relation{Attrs: rel.Attrs, Tuples: newTuples}
		order = append(order, key)
		deltaRows += len(mut.Deletes) + len(mut.Inserts)
	}

	// Evaluate deltas per mutation, in order: each delta sees the new
	// state of previously processed tables and the old state of later
	// ones, which telescopes to the exact batch result.
	pend := map[string]*pending{}
	committed := map[string]*engine.Relation{}
	for i, mut := range muts {
		key := order[i]
		for _, name := range m.sortedTrackedLocked() {
			st := m.tracked[name]
			if !st.trans[key] {
				continue
			}
			p := pend[name]
			if p == nil {
				p = newPending(st)
				pend[name] = p
			}
			if p.recompute {
				continue
			}
			if !st.incremental || st.direct[key] != 1 || st.viaView[key] {
				p.recompute = true
				m.Metrics.Volatile("maintain.fallback.full").Inc()
				continue
			}
			inj.Observe(faultinject.SiteMaintain, 1)
			if err := budget.Check(ctx, "maintain.delta"); err != nil {
				return err
			}
			if err := m.applyDeltaLocked(ctx, st, p, mut.Table, committed, mut.Deletes, -1); err != nil {
				return err
			}
			if err := m.applyDeltaLocked(ctx, st, p, mut.Table, committed, mut.Inserts, +1); err != nil {
				return err
			}
		}
		committed[key] = overlay[key]
	}

	// Build the staged materializations; recompute fallbacks evaluate
	// against the fully mutated base state plus previously staged
	// views, in nesting order.
	names := make([]string, 0, len(pend))
	for name := range pend {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := m.tracked[names[i]], m.tracked[names[j]]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return names[i] < names[j]
	})
	staged := map[string]*engine.Relation{}
	for _, name := range names {
		p := pend[name]
		st := p.st
		if p.recompute {
			inj.Observe(faultinject.SiteMaintain, 1)
			if err := budget.Check(ctx, "maintain.recompute"); err != nil {
				return err
			}
			store := &overlayStorage{db: m.db, over: merged(overlay, staged)}
			ev := m.evaluator()
			ev.Store = store
			rel, err := ev.ExecContext(ctx, st.def.Def)
			if err != nil {
				return err
			}
			rel.Attrs = append([]string{}, st.def.OutCols...)
			p.newRel = rel
			if st.incremental && !st.conjunctive {
				// Counting state must be rebuilt to match the fresh
				// materialization.
				reseed := &state{}
				*reseed = *st
				reseed.rel = rel
				if err := m.seedGroupsOn(ctx, reseed, store); err != nil {
					return err
				}
				p.newGroups = reseed.groups
			}
		} else if st.conjunctive {
			p.newRel = p.buildConjunctive()
		} else {
			p.newRel = p.buildAggregation()
			p.newGroups = p.groups
		}
		if !st.conjunctive && st.incremental {
			p.newIndex = indexOf(st, p.newRel)
		}
		staged[name] = p.newRel
	}

	// Final injection point before the commit: the batch is still
	// all-or-nothing because nothing below can fail.
	inj.Observe(faultinject.SiteMaintain, 1)
	if err := budget.Check(ctx, "maintain.commit"); err != nil {
		return err
	}

	batch := make([]engine.Commit, 0, len(order)+len(names))
	for _, key := range order {
		batch = append(batch, engine.Commit{Name: key, Rel: overlay[key]})
	}
	for _, name := range names {
		batch = append(batch, engine.Commit{Name: pend[name].st.def.Name, Rel: pend[name].newRel, Silent: true})
	}
	m.db.Apply(batch)
	for _, name := range names {
		p := pend[name]
		p.st.rel = p.newRel
		if p.newGroups != nil {
			p.st.groups = p.newGroups
		}
		if p.newIndex != nil {
			p.st.index = p.newIndex
		}
	}
	m.Metrics.Volatile("maintain.batch.apply").Inc()
	m.Metrics.Volatile("maintain.delta.rows").Add(int64(deltaRows))
	return nil
}

// sortedTrackedLocked returns tracked view keys in deterministic order.
func (m *Maintainer) sortedTrackedLocked() []string {
	names := make([]string, 0, len(m.tracked))
	for k := range m.tracked {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func newPending(st *state) *pending {
	p := &pending{st: st, touched: map[string]bool{}, copied: map[string]bool{}}
	if st.conjunctive {
		p.conjDel = map[string]int64{}
		return p
	}
	p.groups = make(map[string]*group, len(st.groups))
	for k, g := range st.groups {
		p.groups[k] = g
	}
	return p
}

// removeBag removes a multiset of rows from tuples, returning a fresh
// slice; a row not present is a typed error (the batch aborts cleanly).
func removeBag(tuples, deletes [][]value.Value, table string) ([][]value.Value, error) {
	if len(deletes) == 0 {
		out := make([][]value.Value, len(tuples))
		copy(out, tuples)
		return out, nil
	}
	want := map[string]int64{}
	for _, r := range deletes {
		want[keyOf(r)]++
	}
	out := make([][]value.Value, 0, len(tuples))
	removed := int64(0)
	for _, t := range tuples {
		k := keyOf(t)
		if want[k] > 0 {
			want[k]--
			removed++
			continue
		}
		out = append(out, t)
	}
	if removed != int64(len(deletes)) {
		return nil, fmt.Errorf("maintain: delete of absent row from %s", table)
	}
	return out, nil
}

// overlayStorage resolves scans against staged relations first, then
// the live database. It is the engine's view of "the database as it
// will be" (recompute) or "the database with one table swapped for a
// delta" (delta evaluation).
type overlayStorage struct {
	mu   sync.Mutex
	db   *engine.DB
	over map[string]*engine.Relation
	cols map[string]*engine.ColTable
}

func merged(a, b map[string]*engine.Relation) map[string]*engine.Relation {
	out := make(map[string]*engine.Relation, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Scan implements engine.Storage.
func (o *overlayStorage) Scan(name string) (*engine.ColTable, bool, error) {
	key := strings.ToLower(name)
	o.mu.Lock()
	rel, ok := o.over[key]
	if !ok {
		o.mu.Unlock()
		return o.db.Scan(name)
	}
	ct, cached := o.cols[key]
	if !cached {
		ct = engine.BuildColTable(rel)
		if o.cols == nil {
			o.cols = map[string]*engine.ColTable{}
		}
		o.cols[key] = ct
	}
	o.mu.Unlock()
	return ct, true, nil
}

// applyDeltaLocked evaluates the view's delta queries with table bound
// to rows and folds the result into the pending group state with the
// given sign (+1 insert, -1 delete).
func (m *Maintainer) applyDeltaLocked(ctx context.Context, st *state, p *pending, table string, committed map[string]*engine.Relation, rows [][]value.Value, sign int64) error {
	if len(rows) == 0 {
		return nil
	}
	base, ok := committed[strings.ToLower(table)]
	if !ok {
		if base, ok = m.db.Get(table); !ok {
			return fmt.Errorf("maintain: unknown table %q", table)
		}
	}
	delta := &engine.Relation{Attrs: base.Attrs, Tuples: rows}
	over := merged(committed, nil)
	over[strings.ToLower(table)] = delta
	store := &overlayStorage{db: m.db, over: over}
	ev := m.evaluator()
	ev.Store = store

	if st.conjunctive {
		res, err := ev.ExecContext(ctx, st.def.Def)
		if err != nil {
			return err
		}
		if sign > 0 {
			p.conjAdd = append(p.conjAdd, res.Tuples...)
		} else {
			for _, t := range res.Tuples {
				p.conjDel[keyOf(t)]++
			}
		}
		return nil
	}

	k := len(st.groupPos)
	res, err := ev.ExecContext(ctx, st.aux)
	if err != nil {
		return err
	}
	for _, row := range res.Tuples {
		key := keyOf(row[:k])
		g := p.group(key, row[:k], len(st.aggs))
		g.n += sign * row[st.nAt].AsInt()
		if g.n < 0 {
			return fmt.Errorf("maintain: negative multiplicity in view %s", st.def.Name)
		}
		for i, a := range st.aggs {
			if a.sumAt < 0 {
				continue
			}
			d := row[a.sumAt]
			as := &g.aggs[i]
			// The zero Value is Int(0), the correct additive identity:
			// int groups stay int, a float delta promotes, mirroring
			// the engine's earliest-value sum typing.
			op := value.Add
			if sign < 0 {
				op = value.Sub
			}
			s, err := op(as.sum, d)
			if err != nil {
				return err
			}
			as.sum = s
			as.avg += float64(sign) * d.AsFloat()
		}
	}
	for i, a := range st.aggs {
		if a.mm == nil {
			continue
		}
		res, err := ev.ExecContext(ctx, a.mm)
		if err != nil {
			return err
		}
		for _, row := range res.Tuples {
			key := keyOf(row[:k])
			g := p.group(key, row[:k], len(st.aggs))
			as := &g.aggs[i]
			if as.vals == nil {
				as.vals = map[string]*mmEntry{}
			}
			v := row[k]
			e, ok := as.vals[v.Key()]
			if !ok {
				e = &mmEntry{v: v}
				as.vals[v.Key()] = e
			}
			e.n += sign * row[k+1].AsInt()
			if e.n < 0 {
				return fmt.Errorf("maintain: negative multiplicity in view %s", st.def.Name)
			}
			if e.n == 0 {
				// Extremum retraction: the surviving multiset is
				// re-scanned when the output row is rebuilt.
				delete(as.vals, v.Key())
			}
		}
	}
	return nil
}

// group returns the pending group for key, deep-copying it on first
// touch so an aborted batch leaves the live state intact.
func (p *pending) group(key string, groupVals []value.Value, nAggs int) *group {
	if p.copied[key] {
		return p.groups[key]
	}
	g, ok := p.groups[key]
	if !ok {
		g = &group{groupVals: append([]value.Value{}, groupVals...), aggs: make([]aggState, nAggs)}
	} else {
		cp := &group{groupVals: g.groupVals, n: g.n, aggs: make([]aggState, len(g.aggs))}
		for i, as := range g.aggs {
			cp.aggs[i] = aggState{sum: as.sum, avg: as.avg}
			if as.vals != nil {
				cp.aggs[i].vals = make(map[string]*mmEntry, len(as.vals))
				for k, e := range as.vals {
					cp.aggs[i].vals[k] = &mmEntry{v: e.v, n: e.n}
				}
			}
		}
		g = cp
	}
	p.groups[key] = g
	p.copied[key] = true
	p.touched[key] = true
	return g
}

// buildConjunctive stages the new materialization of a conjunctive
// view: surviving old rows (bag-matched against the delete delta) plus
// appended insert-delta rows.
func (p *pending) buildConjunctive() *engine.Relation {
	old := p.st.rel
	out := make([][]value.Value, 0, len(old.Tuples)+len(p.conjAdd))
	pendingDel := p.conjDel
	for _, t := range old.Tuples {
		k := keyOf(t)
		if pendingDel[k] > 0 {
			pendingDel[k]--
			continue
		}
		out = append(out, t)
	}
	out = append(out, p.conjAdd...)
	return &engine.Relation{Attrs: old.Attrs, Tuples: out}
}

// buildAggregation stages the new materialization of an aggregation
// view: untouched rows keep their position, touched groups are rebuilt
// in place (or dropped at multiplicity zero), new groups append in
// sorted key order.
func (p *pending) buildAggregation() *engine.Relation {
	st := p.st
	old := st.rel
	emitted := map[string]bool{}
	out := make([][]value.Value, 0, len(old.Tuples)+len(p.touched))
	for _, t := range old.Tuples {
		key := st.groupKey(t)
		if !p.touched[key] {
			out = append(out, t)
			continue
		}
		emitted[key] = true
		if g, ok := p.groups[key]; ok && g.n > 0 {
			out = append(out, g.row(st))
		}
	}
	fresh := make([]string, 0, len(p.touched))
	for key := range p.touched {
		if !emitted[key] {
			fresh = append(fresh, key)
		}
	}
	sort.Strings(fresh)
	for _, key := range fresh {
		if g, ok := p.groups[key]; ok && g.n > 0 {
			out = append(out, g.row(st))
		} else {
			delete(p.groups, key)
		}
	}
	for key := range p.touched {
		if g, ok := p.groups[key]; ok && g.n == 0 {
			delete(p.groups, key)
		}
	}
	return &engine.Relation{Attrs: old.Attrs, Tuples: out}
}

// row rebuilds a group's output tuple from its counting state.
func (g *group) row(st *state) []value.Value {
	tuple := make([]value.Value, len(st.def.Def.Select))
	for i, p := range st.groupPos {
		tuple[p] = g.groupVals[i]
	}
	for i, a := range st.aggs {
		as := &g.aggs[i]
		switch a.fn {
		case ir.AggCount:
			tuple[a.pos] = value.Int(g.n)
		case ir.AggSum:
			tuple[a.pos] = as.sum
		case ir.AggAvg:
			tuple[a.pos] = value.Float(as.avg / float64(g.n))
		case ir.AggMin, ir.AggMax:
			var best value.Value
			seen := false
			for _, e := range as.vals {
				if !seen {
					best, seen = e.v, true
					continue
				}
				c := value.Compare(e.v, best)
				if (a.fn == ir.AggMin && c < 0) || (a.fn == ir.AggMax && c > 0) {
					best = e.v
				}
			}
			tuple[a.pos] = best
		}
	}
	return tuple
}

func indexOf(st *state, rel *engine.Relation) map[string]int {
	idx := make(map[string]int, len(rel.Tuples))
	for i, t := range rel.Tuples {
		idx[st.groupKey(t)] = i
	}
	return idx
}

// seedGroupsOn rebuilds counting state against a specific storage.
func (m *Maintainer) seedGroupsOn(ctx context.Context, st *state, store engine.Storage) error {
	st.groups = map[string]*group{}
	ev := m.evaluator()
	ev.Store = store
	main, err := ev.ExecContext(ctx, st.aux)
	if err != nil {
		return err
	}
	k := len(st.groupPos)
	for _, row := range main.Tuples {
		g := &group{groupVals: append([]value.Value{}, row[:k]...), aggs: make([]aggState, len(st.aggs))}
		g.n = row[st.nAt].AsInt()
		for i, a := range st.aggs {
			if a.sumAt >= 0 {
				g.aggs[i].sum = row[a.sumAt]
				g.aggs[i].avg = row[a.sumAt].AsFloat()
			}
		}
		st.groups[keyOf(row[:k])] = g
	}
	for i, a := range st.aggs {
		if a.mm == nil {
			continue
		}
		res, err := ev.ExecContext(ctx, a.mm)
		if err != nil {
			return err
		}
		for _, row := range res.Tuples {
			g, ok := st.groups[keyOf(row[:k])]
			if !ok {
				return fmt.Errorf("maintain: inconsistent seed for view %s", st.def.Name)
			}
			if g.aggs[i].vals == nil {
				g.aggs[i].vals = map[string]*mmEntry{}
			}
			v := row[k]
			g.aggs[i].vals[v.Key()] = &mmEntry{v: v, n: row[k+1].AsInt()}
		}
	}
	return nil
}

// Materialization returns the maintained relation of a tracked view.
func (m *Maintainer) Materialization(name string) (*engine.Relation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tracked[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return st.rel, true
}

// IsIncremental reports whether a tracked view merges deltas (true) or
// recomputes (false).
func (m *Maintainer) IsIncremental(name string) (bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tracked[strings.ToLower(name)]
	if !ok {
		return false, false
	}
	return st.incremental, true
}

// Tracks reports whether the named view is maintained.
func (m *Maintainer) Tracks(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.tracked[strings.ToLower(name)]
	return ok
}

// GroupCounts returns a copy of an aggregation view's multiplicity
// counts by group key — the counting algorithm's core invariant, which
// the property tests (insert∘delete = identity) assert on directly.
func (m *Maintainer) GroupCounts(name string) (map[string]int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.tracked[strings.ToLower(name)]
	if !ok || st.groups == nil {
		return nil, false
	}
	out := make(map[string]int64, len(st.groups))
	for k, g := range st.groups {
		out[k] = g.n
	}
	return out, true
}

// Resync recomputes every tracked view that transitively depends on
// table, rebuilding counting state — the escape hatch for embedders
// that replace a base relation wholesale (System.SetRelation) behind
// the maintainer's back.
func (m *Maintainer) Resync(ctx context.Context, table string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(table)
	names := m.sortedTrackedLocked()
	sort.Slice(names, func(i, j int) bool {
		a, b := m.tracked[names[i]], m.tracked[names[j]]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		st := m.tracked[name]
		if !st.trans[key] {
			continue
		}
		rel, err := m.evaluator().ExecContext(ctx, st.def.Def)
		if err != nil {
			return err
		}
		rel.Attrs = append([]string{}, st.def.OutCols...)
		st.rel = rel
		if st.incremental && !st.conjunctive {
			if err := m.seedGroups(ctx, st); err != nil {
				return err
			}
			st.buildIndex()
		}
		m.db.Refresh(st.def.Name, rel)
	}
	return nil
}
