package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilMeterIsUnlimited(t *testing.T) {
	var m *Meter
	if err := m.AddRows("scan", 1<<40); err != nil {
		t.Fatalf("nil meter charged: %v", err)
	}
	if err := m.AddCandidates("search", 1<<40); err != nil {
		t.Fatalf("nil meter charged: %v", err)
	}
	if m.Rows() != 0 || m.Candidates() != 0 {
		t.Fatal("nil meter reported consumption")
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	m := NewMeter(Limits{})
	if err := m.AddRows("scan", 1<<40); err != nil {
		t.Fatalf("unlimited meter errored: %v", err)
	}
}

func TestRowBudgetExceeded(t *testing.T) {
	m := NewMeter(Limits{MaxRows: 10})
	if err := m.AddRows("scan", 10); err != nil {
		t.Fatalf("exact limit must not trip: %v", err)
	}
	err := m.AddRows("join", 1)
	if err == nil {
		t.Fatal("expected Exceeded")
	}
	var e *Exceeded
	if !errors.As(err, &e) || e.Resource != "rows" || e.Limit != 10 || e.Site != "join" {
		t.Fatalf("wrong error: %#v", err)
	}
	if !IsExceeded(err) || IsCanceled(err) || !IsTransient(err) {
		t.Fatalf("classification wrong for %v", err)
	}
}

func TestCandidateBudgetExceeded(t *testing.T) {
	m := NewMeter(Limits{MaxCandidates: 3})
	for i := 0; i < 3; i++ {
		if err := m.AddCandidates("search", 1); err != nil {
			t.Fatalf("candidate %d tripped early: %v", i, err)
		}
	}
	if err := m.AddCandidates("search", 1); !IsExceeded(err) {
		t.Fatalf("expected Exceeded, got %v", err)
	}
}

// TestMeterConcurrentCharges pins that the total is exact under
// concurrent charging: the error fires iff the sum crosses the limit,
// regardless of interleaving.
func TestMeterConcurrentCharges(t *testing.T) {
	m := NewMeter(Limits{MaxRows: 1000})
	var wg sync.WaitGroup
	errs := make([]error, 10)
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := m.AddRows("scan", 1); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d tripped at exactly the limit: %v", g, err)
		}
	}
	if m.Rows() != 1000 {
		t.Fatalf("rows = %d, want 1000", m.Rows())
	}
	if err := m.AddRows("scan", 1); !IsExceeded(err) {
		t.Fatalf("expected Exceeded past the limit, got %v", err)
	}
}

func TestCheckConvertsContextErrors(t *testing.T) {
	if err := Check(context.Background(), "scan"); err != nil {
		t.Fatalf("live context errored: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Check(ctx, "scan")
	if !IsCanceled(err) {
		t.Fatalf("expected Canceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Canceled must unwrap to context.Canceled: %v", err)
	}
	if IsExceeded(err) {
		t.Fatal("Canceled misclassified as Exceeded")
	}
}

func TestWithMeterRoundTrip(t *testing.T) {
	if MeterFrom(context.Background()) != nil {
		t.Fatal("background context has a meter")
	}
	m := NewMeter(Limits{MaxRows: 5})
	ctx := WithMeter(context.Background(), m)
	if got := MeterFrom(ctx); got != m {
		t.Fatalf("MeterFrom = %v, want %v", got, m)
	}
}

// TestReleaseCacheEntries pins the eviction-refund semantics the
// serving layer's plan cache relies on: a failed AddCacheEntries leaves
// the count charged (the incoming entry's charge), releasing a victim's
// charge makes room again, and the live count is observable.
func TestReleaseCacheEntries(t *testing.T) {
	m := NewMeter(Limits{MaxCacheEntries: 2})
	if err := m.AddCacheEntries("t", 2); err != nil {
		t.Fatal(err)
	}
	if got := m.CacheEntries(); got != 2 {
		t.Fatalf("CacheEntries=%d, want 2", got)
	}
	err := m.AddCacheEntries("t", 1)
	var e *Exceeded
	if !errors.As(err, &e) {
		t.Fatalf("third entry: want Exceeded, got %v", err)
	}
	// The failed charge stays on the books (count=3); refunding one
	// victim balances at the limit.
	m.ReleaseCacheEntries(1)
	if got := m.CacheEntries(); got != 2 {
		t.Fatalf("after refund: CacheEntries=%d, want 2", got)
	}
	// At the limit again: one more add must trip, and after releasing
	// the failed charge plus a live entry there is room.
	if err := m.AddCacheEntries("t", 1); err == nil {
		t.Fatal("add at the limit should trip")
	}
	m.ReleaseCacheEntries(2)
	if err := m.AddCacheEntries("t", 1); err != nil {
		t.Fatalf("add after releases: %v", err)
	}

	// Nil meter: unlimited, nil-safe.
	var nilM *Meter
	nilM.ReleaseCacheEntries(5)
	if got := nilM.CacheEntries(); got != 0 {
		t.Fatalf("nil meter CacheEntries=%d", got)
	}
}
