// Package budget carries per-query resource budgets and cancellation
// through the engine and the rewrite search (DESIGN.md section 10).
//
// A Meter holds the remaining row and candidate allowances of one query
// operation; it travels in a context.Context so that nested work — view
// materialization inside an execution, candidate analysis inside the
// BFS — draws from the same pool. Exhaustion and context cancellation
// surface as the two typed errors of this package:
//
//   - *Canceled wraps a context cancellation or deadline expiry,
//     recording the site (kernel or search stage) that observed it.
//   - *Exceeded reports an exhausted resource budget with the resource
//     name and its limit.
//
// Both are "clean" terminal outcomes: a caller receiving one holds no
// partial result, and the worker pools that observed it have drained.
// IsTransient distinguishes them from genuine evaluation errors so
// caches never memoize an aborted computation (see engine.resolve).
//
// A nil *Meter is a valid unlimited meter; every method no-ops, so hot
// paths charge unconditionally.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Limits bounds one query operation. Zero fields mean unlimited.
type Limits struct {
	// MaxRows caps the number of rows the execution kernels process
	// (scan inputs, join outputs, aggregation inputs), including rows
	// spent materializing views the query references.
	MaxRows int64
	// MaxCandidates caps the number of (view, mapping) candidates the
	// rewrite search analyzes.
	MaxCandidates int64
	// MaxMemBytes caps the bytes of columnar data the execution engine
	// materializes per operation: table images built by Storage.Scan,
	// gathered filter and join outputs, and materialized views all
	// charge the meter through the columnar allocator (estimated bytes:
	// 8 per numeric cell, 16 per string header, 48 per boxed value).
	MaxMemBytes int64
	// MaxCacheEntries caps the number of view-cache entries one
	// operation may create; a query referencing more distinct views than
	// this aborts with a typed *Exceeded instead of materializing them
	// all.
	MaxCacheEntries int64
}

// Canceled reports that a context was canceled or its deadline expired
// while work was in flight. Site names the kernel or search stage that
// observed the cancellation.
type Canceled struct {
	Site string
	Err  error // the context's error (context.Canceled or DeadlineExceeded)
}

func (c *Canceled) Error() string {
	return fmt.Sprintf("budget: canceled at %s: %v", c.Site, c.Err)
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work as expected.
func (c *Canceled) Unwrap() error { return c.Err }

// Exceeded reports an exhausted resource budget.
type Exceeded struct {
	Site     string
	Resource string // "rows", "candidates", "memory" or "cache_entries"
	Limit    int64
}

func (e *Exceeded) Error() string {
	return fmt.Sprintf("budget: %s budget exceeded at %s (limit %d)", e.Resource, e.Site, e.Limit)
}

// IsCanceled reports whether err is (or wraps) a *Canceled.
func IsCanceled(err error) bool {
	var c *Canceled
	return errors.As(err, &c)
}

// IsExceeded reports whether err is (or wraps) an *Exceeded.
func IsExceeded(err error) bool {
	var e *Exceeded
	return errors.As(err, &e)
}

// IsTransient reports whether err is one of this package's typed
// abort errors — an outcome of the operation's budget or context, not a
// property of the data. Caches must not memoize transient errors.
func IsTransient(err error) bool { return IsCanceled(err) || IsExceeded(err) }

// Meter tracks consumption against Limits. It is safe for concurrent
// use: the engine's worker pools and the search's analyzers charge it
// from many goroutines. A nil *Meter is a valid unlimited meter.
type Meter struct {
	limits       Limits
	rows         atomic.Int64
	candidates   atomic.Int64
	mem          atomic.Int64
	cacheEntries atomic.Int64
}

// NewMeter returns a meter enforcing the given limits.
func NewMeter(l Limits) *Meter { return &Meter{limits: l} }

// AddRows charges n processed rows, returning *Exceeded once the total
// crosses MaxRows. The total charged per kernel invocation is fixed by
// the input size, so whether a query exceeds its budget is independent
// of the worker count even though charges arrive in pool order.
func (m *Meter) AddRows(site string, n int64) error {
	if m == nil || m.limits.MaxRows <= 0 {
		return nil
	}
	if m.rows.Add(n) > m.limits.MaxRows {
		return &Exceeded{Site: site, Resource: "rows", Limit: m.limits.MaxRows}
	}
	return nil
}

// AddCandidates charges n analyzed rewrite candidates, returning
// *Exceeded once the total crosses MaxCandidates.
func (m *Meter) AddCandidates(site string, n int64) error {
	if m == nil || m.limits.MaxCandidates <= 0 {
		return nil
	}
	if m.candidates.Add(n) > m.limits.MaxCandidates {
		return &Exceeded{Site: site, Resource: "candidates", Limit: m.limits.MaxCandidates}
	}
	return nil
}

// AddMem charges n bytes of columnar allocation, returning *Exceeded
// once the total crosses MaxMemBytes. The engine's allocation sizes are
// fixed by the data, not by the worker schedule, so whether an operation
// exceeds its memory budget is independent of the worker count.
func (m *Meter) AddMem(site string, n int64) error {
	if m == nil || m.limits.MaxMemBytes <= 0 {
		return nil
	}
	if m.mem.Add(n) > m.limits.MaxMemBytes {
		return &Exceeded{Site: site, Resource: "memory", Limit: m.limits.MaxMemBytes}
	}
	return nil
}

// AddCacheEntries charges n newly created view-cache entries, returning
// *Exceeded once the total crosses MaxCacheEntries.
func (m *Meter) AddCacheEntries(site string, n int64) error {
	if m == nil || m.limits.MaxCacheEntries <= 0 {
		return nil
	}
	if m.cacheEntries.Add(n) > m.limits.MaxCacheEntries {
		return &Exceeded{Site: site, Resource: "cache_entries", Limit: m.limits.MaxCacheEntries}
	}
	return nil
}

// ReleaseCacheEntries returns n previously charged cache entries to the
// meter — an eviction refund. It exists for long-lived caches (the
// server's plan cache charges its entries here): a bounded cache that
// evicts must account for its *live* size, not its cumulative
// insertions, or the meter would exhaust after MaxCacheEntries total
// insertions regardless of evictions.
func (m *Meter) ReleaseCacheEntries(n int64) {
	if m == nil {
		return
	}
	m.cacheEntries.Add(-n)
}

// Rows returns the rows charged so far; 0 on a nil meter.
func (m *Meter) Rows() int64 {
	if m == nil {
		return 0
	}
	return m.rows.Load()
}

// Candidates returns the candidates charged so far; 0 on a nil meter.
func (m *Meter) Candidates() int64 {
	if m == nil {
		return 0
	}
	return m.candidates.Load()
}

// CacheEntries returns the cache entries currently charged (insertions
// minus releases); 0 on a nil meter.
func (m *Meter) CacheEntries() int64 {
	if m == nil {
		return 0
	}
	return m.cacheEntries.Load()
}

// Mem returns the bytes charged so far; 0 on a nil meter.
func (m *Meter) Mem() int64 {
	if m == nil {
		return 0
	}
	return m.mem.Load()
}

type meterKey struct{}

// WithMeter attaches a meter to the context; nested executions and
// searches then draw from the same budget pool.
func WithMeter(ctx context.Context, m *Meter) context.Context {
	return context.WithValue(ctx, meterKey{}, m)
}

// MeterFrom extracts the context's meter; nil (unlimited) when absent.
func MeterFrom(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}

// Check polls the context, converting a cancellation or expired
// deadline into a typed *Canceled naming the observing site.
func Check(ctx context.Context, site string) error {
	if err := ctx.Err(); err != nil {
		return &Canceled{Site: site, Err: err}
	}
	return nil
}
