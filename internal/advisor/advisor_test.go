package advisor

import (
	"strings"
	"testing"

	"aggview/internal/cost"
	"aggview/internal/ir"
)

func src() ir.MapSource {
	return ir.MapSource{
		"Calls":         {"Call_Id", "Plan_Id", "Month", "Year", "Charge"},
		"Calling_Plans": {"Plan_Id", "Plan_Name"},
	}
}

func q(t *testing.T, sql string) *ir.Query {
	t.Helper()
	return ir.MustBuild(sql, src())
}

func stats() cost.Stats {
	return cost.Stats{"Calls": 1e6, "Calling_Plans": 10}
}

func TestSingleQueryCandidate(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	w := Workload{{Query: q(t, "SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id")}}
	recs := a.Recommend(w, 0)
	if len(recs) == 0 {
		t.Fatal("expected a recommendation")
	}
	r := recs[0]
	if r.Benefit <= 0 || len(r.Helps) != 1 {
		t.Fatalf("recommendation: %+v", r)
	}
	def := r.View.Def.SQL()
	// The candidate must expose Year (the dropped selection predicate's
	// column) and group by it, and carry SUM(Charge) plus a COUNT.
	for _, frag := range []string{"Year", "SUM(Charge)", "COUNT("} {
		if !strings.Contains(def, frag) {
			t.Errorf("candidate missing %q: %s", frag, def)
		}
	}
	if strings.Contains(def, "1995") {
		t.Errorf("selection constant must not be baked into the view: %s", def)
	}
}

func TestSharedCandidateForTwoQueries(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	w := Workload{
		{Query: q(t, "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id")},
		{Query: q(t, "SELECT Month, SUM(Charge) FROM Calls GROUP BY Month")},
	}
	recs := a.Recommend(w, 0)
	if len(recs) == 0 {
		t.Fatal("expected recommendations")
	}
	// The merged (Plan_Id, Month) candidate serves both queries, so the
	// greedy pass should pick one view helping both rather than two.
	if len(recs[0].Helps) != 2 {
		for _, r := range recs {
			t.Logf("rec %s helps %v benefit %.0f rows %.0f", r.View.Def.SQL(), r.Helps, r.Benefit, r.EstRows)
		}
		t.Fatalf("first pick should serve both queries, helps=%v", recs[0].Helps)
	}
}

func TestBudgetLimitsSelection(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	w := Workload{
		{Query: q(t, "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id")},
	}
	all := a.Recommend(w, 0)
	if len(all) == 0 {
		t.Fatal("unbudgeted run should recommend")
	}
	none := a.Recommend(w, 0.5) // below any view's estimated size
	if len(none) != 0 {
		t.Fatalf("budget of half a row must refuse everything, got %d", len(none))
	}
}

func TestWeightsShiftPriorities(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	heavy := q(t, "SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id")
	light := q(t, "SELECT Month, MIN(Charge) FROM Calls GROUP BY Month")
	w := Workload{
		{Query: heavy, Weight: 100},
		{Query: light, Weight: 0.01},
	}
	recs := a.Recommend(w, 0)
	if len(recs) == 0 {
		t.Fatal("expected recommendations")
	}
	// The first pick must help the heavy query.
	helpsHeavy := false
	for _, i := range recs[0].Helps {
		if i == 0 {
			helpsHeavy = true
		}
	}
	if !helpsHeavy {
		t.Fatalf("first pick ignores the heavy query: helps=%v", recs[0].Helps)
	}
}

func TestConjunctiveQueriesYieldNoCandidates(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	w := Workload{{Query: q(t, "SELECT Call_Id, Charge FROM Calls WHERE Year = 1995")}}
	if recs := a.Recommend(w, 0); len(recs) != 0 {
		t.Fatalf("no aggregation queries, no candidates: %v", recs)
	}
}

func TestJoinWorkloadCandidate(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	w := Workload{{Query: q(t, `SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
		FROM Calls, Calling_Plans
		WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
		GROUP BY Calling_Plans.Plan_Id, Plan_Name`)}}
	recs := a.Recommend(w, 0)
	if len(recs) == 0 {
		t.Fatal("join workload should produce a candidate")
	}
	def := recs[0].View.Def.SQL()
	if !strings.Contains(def, "Calls, Calling_Plans") && !strings.Contains(def, "Calling_Plans, Calls") {
		t.Errorf("candidate should join both tables: %s", def)
	}
	if !strings.Contains(def, "=") {
		t.Errorf("join predicate must be kept: %s", def)
	}
}

// The recommended views must actually be usable: re-run the rewriter.
func TestRecommendationsAreUsable(t *testing.T) {
	a := &Advisor{Schema: src(), Stats: stats()}
	queries := []string{
		"SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id",
		"SELECT Plan_Id, Month, COUNT(Charge) FROM Calls GROUP BY Plan_Id, Month",
		"SELECT Year, AVG(Charge) FROM Calls GROUP BY Year",
	}
	var w Workload
	for _, sql := range queries {
		w = append(w, WeightedQuery{Query: q(t, sql)})
	}
	recs := a.Recommend(w, 0)
	if len(recs) == 0 {
		t.Fatal("expected recommendations")
	}
	covered := map[int]bool{}
	for _, r := range recs {
		for _, i := range r.Helps {
			covered[i] = true
		}
	}
	if len(covered) != len(queries) {
		t.Fatalf("recommendations cover %d of %d queries", len(covered), len(queries))
	}
}
