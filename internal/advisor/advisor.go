// Package advisor recommends which views to materialize for a query
// workload — the "strategies for determining which views to cache" the
// paper's conclusion names as future work.
//
// Candidate views are derived from the workload's aggregation queries:
// for each query, a view over the same tables that keeps the join
// predicates, exposes the query's grouping columns plus the columns of
// any dropped selection predicates (so condition C3' can re-impose them
// as residuals), and carries the query's aggregates plus a COUNT column
// (so condition C4' can recover multiplicities and coarser queries can
// coalesce). Pairs of candidates over the same tables merge into
// coarser-grained shared candidates.
//
// Selection is greedy benefit-per-row under a space budget: a
// candidate's benefit is the modeled cost saved across the workload
// when the rewriter can actually use it (each benefit is computed by
// running the real rewriter, not a heuristic match).
package advisor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"aggview/internal/core"
	"aggview/internal/cost"
	"aggview/internal/ir"
	"aggview/internal/keys"
)

// WeightedQuery is one workload entry.
type WeightedQuery struct {
	Query  *ir.Query
	Weight float64 // relative frequency; 0 means 1
}

// Workload is a set of queries with frequencies.
type Workload []WeightedQuery

// Recommendation is one selected view.
type Recommendation struct {
	View    *ir.ViewDef
	EstRows float64
	Benefit float64 // modeled cost saved across the workload
	Helps   []int   // workload indices this view improves
}

// Advisor recommends materializations.
type Advisor struct {
	Schema ir.SchemaSource
	Meta   keys.MetaSource
	Stats  cost.Stats
	Opts   core.Options
}

// Recommend returns a set of views whose estimated total size fits
// budgetRows, chosen greedily by benefit per row. A budget of 0 means
// unlimited. It runs unbounded; use RecommendContext to make the
// underlying rewrite searches cancelable.
func (a *Advisor) Recommend(w Workload, budgetRows float64) []Recommendation {
	//aggvet:ctxflow Background shim by design; RecommendContext is the bounded variant.
	recs, _ := a.RecommendContext(context.Background(), w, budgetRows)
	return recs
}

// RecommendContext is Recommend under a context: every rewrite search
// the benefit model runs honors ctx's cancellation, deadline and
// budget. On cancellation it returns ctx's error and the (possibly
// partial) picks made so far.
func (a *Advisor) RecommendContext(ctx context.Context, w Workload, budgetRows float64) ([]Recommendation, error) {
	cands := a.candidates(w)
	if len(cands) == 0 {
		return nil, nil
	}
	est := &cost.Estimator{Stats: a.Stats}

	baseCost := make([]float64, len(w))
	for i, wq := range w {
		baseCost[i] = weight(wq) * est.Estimate(wq.Query)
	}

	var picked []Recommendation
	usedRows := 0.0
	remaining := append([]*ir.ViewDef{}, cands...)
	// current best cost per query given the picked views.
	current := append([]float64{}, baseCost...)

	for len(remaining) > 0 {
		bestIdx := -1
		var bestRec Recommendation
		bestScore := 0.0
		for ci, cand := range remaining {
			rec, ok, err := a.evaluate(ctx, cand, w, current, picked)
			if err != nil {
				return picked, err
			}
			if !ok || rec.Benefit <= 0 {
				continue
			}
			if budgetRows > 0 && usedRows+rec.EstRows > budgetRows {
				continue
			}
			score := rec.Benefit / (1 + rec.EstRows)
			if score > bestScore {
				bestScore, bestIdx, bestRec = score, ci, rec
			}
		}
		if bestIdx < 0 {
			break
		}
		picked = append(picked, bestRec)
		usedRows += bestRec.EstRows
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		// Update the per-query costs the next round competes against.
		next, err := a.workloadCosts(ctx, w, picked, current)
		if err != nil {
			return picked, err
		}
		current = next
	}
	return picked, nil
}

func weight(wq WeightedQuery) float64 {
	if wq.Weight <= 0 {
		return 1
	}
	return wq.Weight
}

// evaluate computes a candidate's marginal benefit over the current
// picks. A non-nil error means ctx ended the rewrite search and the
// whole recommendation round should stop.
func (a *Advisor) evaluate(ctx context.Context, cand *ir.ViewDef, w Workload, current []float64, picked []Recommendation) (Recommendation, bool, error) {
	reg := ir.NewRegistry()
	for _, p := range picked {
		if err := reg.Add(p.View); err != nil {
			return Recommendation{}, false, nil
		}
	}
	if err := reg.Add(cand); err != nil {
		return Recommendation{}, false, nil
	}
	est := &cost.Estimator{Stats: a.Stats, Views: reg}
	rw := &core.Rewriter{Schema: a.Schema, Views: reg, Meta: a.Meta, Opts: a.Opts}

	rec := Recommendation{View: cand, EstRows: viewRows(est, cand)}
	for i, wq := range w {
		best := current[i]
		rws, err := rw.RewritingsContext(ctx, wq.Query)
		if err != nil {
			return Recommendation{}, false, err
		}
		for _, r := range rws {
			usesCand := false
			for _, u := range r.Used {
				if strings.EqualFold(u, cand.Name) {
					usesCand = true
				}
			}
			if !usesCand {
				continue
			}
			if c := weight(wq) * est.Estimate(r.Query); c < best {
				best = c
			}
		}
		if best < current[i] {
			rec.Benefit += current[i] - best
			rec.Helps = append(rec.Helps, i)
		}
	}
	return rec, true, nil
}

// workloadCosts recomputes each query's best cost given the picked
// views.
func (a *Advisor) workloadCosts(ctx context.Context, w Workload, picked []Recommendation, prev []float64) ([]float64, error) {
	reg := ir.NewRegistry()
	for _, p := range picked {
		if err := reg.Add(p.View); err != nil {
			return prev, nil
		}
	}
	est := &cost.Estimator{Stats: a.Stats, Views: reg}
	rw := &core.Rewriter{Schema: a.Schema, Views: reg, Meta: a.Meta, Opts: a.Opts}
	out := append([]float64{}, prev...)
	for i, wq := range w {
		rws, err := rw.RewritingsContext(ctx, wq.Query)
		if err != nil {
			return prev, err
		}
		for _, r := range rws {
			if c := weight(wq) * est.Estimate(r.Query); c < out[i] {
				out[i] = c
			}
		}
	}
	return out, nil
}

func viewRows(est *cost.Estimator, v *ir.ViewDef) float64 {
	e := &cost.Estimator{Stats: est.Stats}
	q := v.Def
	// Reuse the estimator's output model via a throwaway registry.
	reg := ir.NewRegistry()
	_ = reg.Add(v)
	e.Views = reg
	// Estimate the definition's output through a reference query.
	return estimateRows(e, q)
}

// estimateRows approximates a query's output cardinality using the cost
// model's internals: cost of the query minus its scan volume is the
// joined-row volume; grouped outputs shrink by the model's group ratio.
func estimateRows(e *cost.Estimator, q *ir.Query) float64 {
	scan := 0.0
	for _, t := range q.Tables {
		if c, ok := e.Stats.Card(t.Source); ok {
			scan += c
		} else {
			scan += 1000
		}
	}
	joined := e.Estimate(q) - scan
	if q.IsAggregationQuery() {
		if len(q.GroupBy) == 0 {
			return 1
		}
		joined *= 0.1
	}
	if joined < 1 {
		return 1
	}
	return joined
}

// candidates derives candidate view definitions from the workload.
func (a *Advisor) candidates(w Workload) []*ir.ViewDef {
	var out []*ir.ViewDef
	seen := map[string]bool{}
	add := func(def *ir.Query) {
		if def == nil {
			return
		}
		v, err := ir.NewViewDef(fmt.Sprintf("adv_%d", len(out)+1), def)
		if err != nil {
			return
		}
		key := canonicalViewKey(v)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, v)
	}

	var singles []*ir.Query
	for _, wq := range w {
		def := candidateFor(wq.Query)
		if def != nil {
			singles = append(singles, def)
			add(def)
		}
	}
	// Merged candidates for query pairs over the same table multiset.
	for i := 0; i < len(singles); i++ {
		for j := i + 1; j < len(singles); j++ {
			add(mergeCandidates(singles[i], singles[j]))
		}
	}
	return out
}

// candidateFor builds the canonical candidate for one aggregation
// query: join predicates kept, selection columns exposed and grouped,
// aggregates plus COUNT carried.
func candidateFor(q *ir.Query) *ir.Query {
	if !q.IsAggregationQuery() || len(q.Tables) == 0 {
		return nil
	}
	def := &ir.Query{}
	oldToNew := make([]ir.ColID, q.NumCols())
	for _, t := range q.Tables {
		attrs := make([]string, len(t.Cols))
		for pos, id := range t.Cols {
			attrs[pos] = q.Col(id).Attr
		}
		nt := def.AddTable(t.Source, "", attrs)
		for pos, id := range t.Cols {
			oldToNew[id] = def.Tables[nt].Cols[pos]
		}
	}
	remap := func(c ir.ColID) ir.ColID { return oldToNew[c] }

	groupSet := map[ir.ColID]bool{}
	for _, g := range q.GroupBy {
		groupSet[remap(g)] = true
	}
	for _, p := range q.Where {
		if p.Op == ir.OpEq && !p.L.IsConst && !p.R.IsConst {
			// Join predicates are enforced inside the view.
			def.Where = append(def.Where, ir.MapPredCols(p, remap))
			continue
		}
		// Selection predicates are dropped; their columns must be exposed
		// and grouped so they survive as residuals.
		if !p.L.IsConst {
			groupSet[remap(p.L.Col)] = true
		}
		if !p.R.IsConst {
			groupSet[remap(p.R.Col)] = true
		}
	}
	groups := make([]ir.ColID, 0, len(groupSet))
	for c := range groupSet {
		groups = append(groups, c)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	def.GroupBy = groups
	for _, g := range groups {
		def.Select = append(def.Select, ir.SelectItem{Expr: &ir.ColRef{Col: g}})
	}

	aggSeen := map[string]bool{}
	addAgg := func(fn ir.AggFunc, col ir.ColID) {
		key := fmt.Sprintf("%d:%d", fn, col)
		if aggSeen[key] {
			return
		}
		aggSeen[key] = true
		def.Select = append(def.Select, ir.SelectItem{Expr: &ir.Agg{Func: fn, Arg: &ir.ColRef{Col: col}}})
	}
	collect := func(e ir.Expr) {
		var walk func(e ir.Expr)
		walk = func(e ir.Expr) {
			switch x := e.(type) {
			case *ir.Agg:
				if c, ok := x.Arg.(*ir.ColRef); ok {
					fn := x.Func
					if fn == ir.AggAvg {
						// AVG is reconstructed from SUM and COUNT.
						addAgg(ir.AggSum, remap(c.Col))
						return
					}
					if fn == ir.AggCount {
						return // the shared COUNT below covers it
					}
					addAgg(fn, remap(c.Col))
				}
			case *ir.Arith:
				walk(x.L)
				walk(x.R)
			}
		}
		walk(e)
	}
	for _, it := range q.Select {
		collect(it.Expr)
	}
	for _, h := range q.Having {
		collect(h.L)
		collect(h.R)
	}
	// Always carry multiplicities.
	def.Select = append(def.Select, ir.SelectItem{Expr: &ir.Agg{Func: ir.AggCount, Arg: &ir.ColRef{Col: def.Tables[0].Cols[0]}}})
	return def
}

// mergeCandidates unions two candidates over the same table multiset
// into a coarser shared view; nil when the shapes differ.
func mergeCandidates(x, y *ir.Query) *ir.Query {
	if len(x.Tables) != len(y.Tables) {
		return nil
	}
	for i := range x.Tables {
		if !strings.EqualFold(x.Tables[i].Source, y.Tables[i].Source) {
			return nil
		}
	}
	// Join predicates must agree (same canonical rendering).
	if renderPreds(x) != renderPreds(y) {
		return nil
	}
	merged := x.Clone()
	// Union group columns (positionally: same tables means same ColIDs).
	gset := map[ir.ColID]bool{}
	for _, g := range x.GroupBy {
		gset[g] = true
	}
	for _, g := range y.GroupBy {
		gset[g] = true
	}
	groups := make([]ir.ColID, 0, len(gset))
	for c := range gset {
		groups = append(groups, c)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	merged.GroupBy = groups
	// Rebuild select: groups, union of aggregates, one COUNT.
	merged.Select = nil
	for _, g := range groups {
		merged.Select = append(merged.Select, ir.SelectItem{Expr: &ir.ColRef{Col: g}})
	}
	aggSeen := map[string]bool{}
	var countCol ir.ColID = -1
	for _, src := range []*ir.Query{x, y} {
		for _, it := range src.Select {
			a, ok := it.Expr.(*ir.Agg)
			if !ok {
				continue
			}
			c := a.Arg.(*ir.ColRef)
			if a.Func == ir.AggCount {
				countCol = c.Col
				continue
			}
			key := fmt.Sprintf("%d:%d", a.Func, c.Col)
			if aggSeen[key] {
				continue
			}
			aggSeen[key] = true
			merged.Select = append(merged.Select, ir.SelectItem{Expr: &ir.Agg{Func: a.Func, Arg: &ir.ColRef{Col: c.Col}}})
		}
	}
	if countCol < 0 {
		countCol = merged.Tables[0].Cols[0]
	}
	merged.Select = append(merged.Select, ir.SelectItem{Expr: &ir.Agg{Func: ir.AggCount, Arg: &ir.ColRef{Col: countCol}}})
	return merged
}

func renderPreds(q *ir.Query) string {
	parts := make([]string, 0, len(q.Where))
	for _, p := range q.Where {
		parts = append(parts, q.PredSQL(p))
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// canonicalViewKey fingerprints a candidate for deduplication.
func canonicalViewKey(v *ir.ViewDef) string {
	return v.Def.SQL()
}
