// Package oracle implements differential testing of the rewriter: a
// seeded generator of random schemas, table contents, view definitions
// and queries; a checker executing each query directly and through
// every rewriting the rewriter emits, asserting multiset-equal results
// at several worker counts; and a shrinker reducing any violation to a
// minimal SQL script that replays the failure.
//
// Everything a case needs travels as SQL text plus literal rows, so a
// failing instance prints as a self-contained script (CREATE TABLE /
// INSERT / CREATE VIEW / SELECT) that Replay parses back verbatim.
package oracle

import (
	"context"
	"fmt"
	"strings"

	"aggview"
	"aggview/internal/engine"
	"aggview/internal/value"
)

// TableSpec declares one base table and its full contents.
type TableSpec struct {
	Name string
	Cols []string
	Key  []string // optional key columns (unique over Rows when set)
	Rows [][]value.Value
}

// SQL renders the CREATE TABLE statement.
func (t *TableSpec) SQL() string {
	s := "CREATE TABLE " + t.Name + "(" + strings.Join(t.Cols, ", ") + ")"
	if len(t.Key) > 0 {
		s += " KEY(" + strings.Join(t.Key, ", ") + ")"
	}
	return s
}

// Relation materializes the rows as an engine relation.
func (t *TableSpec) Relation() *engine.Relation {
	rel := engine.NewRelation(t.Cols...)
	for _, row := range t.Rows {
		rel.Add(row...)
	}
	return rel
}

// QuerySpec is a single-block query kept as clause strings: the
// generator and the shrinker both manipulate clause lists, and the SQL
// round-trips through the parser unchanged.
type QuerySpec struct {
	Distinct bool
	Select   []string
	From     []string
	Where    []string // conjuncts
	GroupBy  []string
	Having   []string // conjuncts
}

// SQL renders the query.
func (q *QuerySpec) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString(strings.Join(q.Select, ", "))
	b.WriteString(" FROM " + strings.Join(q.From, ", "))
	if len(q.Where) > 0 {
		b.WriteString(" WHERE " + strings.Join(q.Where, " AND "))
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
	}
	if len(q.Having) > 0 {
		b.WriteString(" HAVING " + strings.Join(q.Having, " AND "))
	}
	return b.String()
}

// clone deep-copies the clause lists.
func (q *QuerySpec) clone() QuerySpec {
	return QuerySpec{
		Distinct: q.Distinct,
		Select:   append([]string{}, q.Select...),
		From:     append([]string{}, q.From...),
		Where:    append([]string{}, q.Where...),
		GroupBy:  append([]string{}, q.GroupBy...),
		Having:   append([]string{}, q.Having...),
	}
}

// ViewSpec names a view definition. Cols, when set, are explicit
// output column names (the CREATE VIEW V(a, b) AS form server scripts
// emit); empty means the engine derives them from the SELECT items.
type ViewSpec struct {
	Name string
	Cols []string
	Def  QuerySpec
}

// SQL renders the CREATE VIEW statement.
func (v *ViewSpec) SQL() string {
	s := "CREATE VIEW " + v.Name
	if len(v.Cols) > 0 {
		s += "(" + strings.Join(v.Cols, ", ") + ")"
	}
	return s + " AS " + v.Def.SQL()
}

// Case is one differential-test instance: a schema with contents, view
// definitions, and the query under test.
type Case struct {
	Tables []*TableSpec
	Views  []*ViewSpec
	Query  QuerySpec
}

// Script renders the case as a replayable SQL script: tables, their
// contents, views, then the query.
func (c *Case) Script() string {
	var b strings.Builder
	for _, t := range c.Tables {
		b.WriteString(t.SQL() + ";\n")
		if len(t.Rows) > 0 {
			ins := "INSERT INTO " + t.Name + " VALUES "
			for i, row := range t.Rows {
				if i > 0 {
					ins += ", "
				}
				ins += "(" + renderRow(row) + ")"
			}
			b.WriteString(ins + ";\n")
		}
	}
	for _, v := range c.Views {
		b.WriteString(v.SQL() + ";\n")
	}
	b.WriteString(c.Query.SQL() + ";\n")
	return b.String()
}

func renderRow(row []value.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String() // Value.String quotes strings
	}
	return strings.Join(parts, ", ")
}

// Clone deep-copies the case, so the shrinker can mutate candidates
// freely.
func (c *Case) Clone() *Case {
	out := &Case{Query: c.Query.clone()}
	for _, t := range c.Tables {
		nt := &TableSpec{
			Name: t.Name,
			Cols: append([]string{}, t.Cols...),
			Key:  append([]string{}, t.Key...),
		}
		for _, row := range t.Rows {
			nt.Rows = append(nt.Rows, append([]value.Value{}, row...))
		}
		out.Tables = append(out.Tables, nt)
	}
	for _, v := range c.Views {
		out.Views = append(out.Views, &ViewSpec{Name: v.Name, Cols: append([]string{}, v.Cols...), Def: v.Def.clone()})
	}
	return out
}

// Compile loads the case into a fresh aggview.System: schema and view
// definitions, table contents, and every view materialized. The
// returned system is ready for direct execution and rewriting. Compile
// is CompileContext with a background context.
func (c *Case) Compile(opts aggview.Options) (*aggview.System, error) {
	//aggvet:ctxflow Background shim by design; CompileContext is the bounded variant.
	return c.CompileContext(context.Background(), opts)
}

// CompileContext is Compile under a context: the view
// materializations it performs honor ctx's cancellation, deadline and
// budget.
func (c *Case) CompileContext(ctx context.Context, opts aggview.Options) (*aggview.System, error) {
	sys := aggview.New()
	sys.Opts = opts
	for _, t := range c.Tables {
		if err := sys.Load(t.SQL()); err != nil {
			return nil, fmt.Errorf("oracle: table %s: %w", t.Name, err)
		}
	}
	for _, v := range c.Views {
		if err := sys.Load(v.SQL()); err != nil {
			return nil, fmt.Errorf("oracle: view %s: %w", v.Name, err)
		}
	}
	for _, t := range c.Tables {
		if err := sys.SetRelation(t.Name, t.Relation()); err != nil {
			return nil, fmt.Errorf("oracle: rows of %s: %w", t.Name, err)
		}
	}
	for _, v := range c.Views {
		if _, err := sys.MaterializeContext(ctx, v.Name); err != nil {
			return nil, fmt.Errorf("oracle: materialize %s: %w", v.Name, err)
		}
	}
	return sys, nil
}
