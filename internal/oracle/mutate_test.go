package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"aggview"
	"aggview/internal/engine"
	"aggview/internal/value"
)

// handCase builds a small deterministic scenario: one keyed table, a
// SUM/COUNT view and an AVG view over it, and a step sequence hitting
// every mutation kind plus interleaved queries.
func handCase() *MutationCase {
	base := &Case{
		Tables: []*TableSpec{{
			Name: "Sales",
			Cols: []string{"Region", "Amount", "Qty"},
			Key:  nil,
			Rows: [][]value.Value{
				{value.Str("n"), value.Int(10), value.Int(1)},
				{value.Str("n"), value.Int(20), value.Int(2)},
				{value.Str("s"), value.Int(30), value.Int(3)},
			},
		}},
		Views: []*ViewSpec{
			{
				Name: "Totals",
				Def: QuerySpec{
					Select:  []string{"Region", "SUM(Amount)", "COUNT(Amount)"},
					From:    []string{"Sales"},
					GroupBy: []string{"Region"},
				},
			},
			{
				Name: "Avgs",
				Def: QuerySpec{
					Select:  []string{"Region", "AVG(Amount)"},
					From:    []string{"Sales"},
					GroupBy: []string{"Region"},
				},
			},
		},
	}
	q := QuerySpec{
		Select:  []string{"Region", "SUM(Amount)"},
		From:    []string{"Sales"},
		GroupBy: []string{"Region"},
	}
	return &MutationCase{
		Base: base,
		Steps: []MutStep{
			{Kind: StepInsert, Table: "Sales", Rows: [][]value.Value{
				{value.Str("w"), value.Int(5), value.Int(1)},
				{value.Str("n"), value.Int(7), value.Int(4)},
			}},
			{Kind: StepQuery, Query: &q},
			{Kind: StepDelete, Table: "Sales", Where: "Amount < 10"},
			{Kind: StepUpdate, Table: "Sales", Set: "Amount = Amount + 100", Where: "Region = 's'"},
			{Kind: StepQuery, Query: &q},
			{Kind: StepDelete, Table: "Sales", Where: "Region = 'w'"},
			{Kind: StepUpdate, Table: "Sales", Set: "Qty = 9", Where: ""},
			{Kind: StepQuery, Query: &q},
		},
	}
}

// The deterministic scenario must pass all three passes, maintain both
// views incrementally, and actually exercise the fault machinery.
func TestMutationHandCase(t *testing.T) {
	mc := handCase()
	out, err := CheckMutation(mc, MutOptions{Faults: []int64{1, 2, 5}})
	if err != nil {
		t.Fatalf("CheckMutation: %v", err)
	}
	if !out.OK() {
		for _, v := range out.Violations {
			t.Errorf("violation: %s", v.String())
		}
		t.Fatalf("hand case failed with %d violations", len(out.Violations))
	}
	if out.Incremental != 2 {
		t.Errorf("Incremental = %d, want 2 (SUM/COUNT and AVG views both countable)", out.Incremental)
	}
	if out.Steps != len(mc.Steps) {
		t.Errorf("Steps = %d, want %d", out.Steps, len(mc.Steps))
	}
	if out.FaultRuns == 0 {
		t.Error("fault pass ran no injected mutations")
	}
}

// Script → ReplayMutation → Script must be the identity: shrunken
// repros printed by the soak have to replay verbatim.
func TestMutationScriptRoundTrip(t *testing.T) {
	mc := handCase()
	script := mc.Script()
	back, err := ReplayMutation(script)
	if err != nil {
		t.Fatalf("ReplayMutation: %v\nscript:\n%s", err, script)
	}
	if got := back.Script(); got != script {
		t.Fatalf("round-trip drift:\n--- original ---\n%s\n--- replayed ---\n%s", script, got)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		gen := GenerateMutation(rng, GenOptions{})
		script := gen.Script()
		back, err := ReplayMutation(script)
		if err != nil {
			t.Fatalf("trial %d: ReplayMutation: %v\nscript:\n%s", trial, err, script)
		}
		if got := back.Script(); got != script {
			t.Fatalf("trial %d: round-trip drift:\n--- original ---\n%s\n--- replayed ---\n%s", trial, script, got)
		}
	}
}

// Mutation scripts must also parse through the single-query Replay
// entry point: DELETE and UPDATE collapse into the table contents and
// the last SELECT becomes the case query.
func TestReplayCollapsesMutations(t *testing.T) {
	script := "CREATE TABLE T(A, B);\n" +
		"INSERT INTO T VALUES ('x', 1), ('x', 2), ('y', 3);\n" +
		"CREATE VIEW V AS SELECT A, SUM(B) FROM T GROUP BY A;\n" +
		"INSERT INTO T VALUES ('y', 4);\n" +
		"DELETE FROM T WHERE B < 2;\n" +
		"UPDATE T SET B = B + 10 WHERE A = 'y';\n" +
		"SELECT A, SUM(B) FROM T GROUP BY A;\n" +
		"SELECT A, COUNT(B) FROM T GROUP BY A;\n"
	c, err := Replay(script)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	want := [][]value.Value{
		{value.Str("x"), value.Int(2)},
		{value.Str("y"), value.Int(13)},
		{value.Str("y"), value.Int(14)},
	}
	got := c.Tables[0].Rows
	if !engine.ResultsEqualBag(
		&engine.Relation{Attrs: c.Tables[0].Cols, Tuples: want},
		&engine.Relation{Attrs: c.Tables[0].Cols, Tuples: got},
	) {
		t.Fatalf("collapsed rows = %v, want %v", got, want)
	}
	if len(c.Query.Select) != 2 || c.Query.Select[1] != "COUNT(B)" {
		t.Fatalf("Replay kept query %q, want the last SELECT", c.Query.SQL())
	}
	// A checked replayed case must still pass end to end.
	out, err := Check(c, Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !out.OK() {
		t.Fatalf("replayed case failed: %v", out.Violations)
	}
}

// A tampered materialization must be caught, and the shrinker must
// reduce the scenario to something minimal whose script still replays.
func TestMutationTamperCaughtAndShrinks(t *testing.T) {
	mc := handCase()
	opt := MutOptions{
		Readers: -1, // serial pass only: tampering happens pre-steps
		Tamper: func(sys *aggview.System) {
			// The shrinker may have dropped this view from a candidate;
			// such candidates simply pass.
			rel, ok := sys.DB.Get("Totals")
			if !ok {
				return
			}
			bad := &engine.Relation{Attrs: rel.Attrs}
			for _, row := range rel.Tuples {
				r := append([]value.Value{}, row...)
				r[1] = value.Int(r[1].AsInt() + 1)
				bad.Tuples = append(bad.Tuples, r)
			}
			sys.DB.Refresh("Totals", bad)
		},
	}
	out, err := CheckMutation(mc, opt)
	if err != nil {
		t.Fatalf("CheckMutation: %v", err)
	}
	if out.OK() {
		t.Fatal("tampered materialization not caught")
	}
	shrunk := ShrinkMutation(mc, opt)
	if len(shrunk.Steps) != 0 {
		t.Errorf("shrunk to %d steps, want 0 (tamper fires before any step)", len(shrunk.Steps))
	}
	if len(shrunk.Base.Views) != 1 {
		t.Errorf("shrunk to %d views, want 1", len(shrunk.Base.Views))
	}
	sOut, err := CheckMutation(shrunk, opt)
	if err != nil {
		t.Fatalf("CheckMutation(shrunk): %v", err)
	}
	if sOut.OK() {
		t.Fatal("shrunk scenario no longer fails")
	}
	if _, err := ReplayMutation(shrunk.Script()); err != nil {
		t.Fatalf("shrunk script does not replay: %v\n%s", err, shrunk.Script())
	}
}

// A passing scenario must come back from the shrinker untouched.
func TestShrinkMutationKeepsPassingCase(t *testing.T) {
	mc := handCase()
	if got := ShrinkMutation(mc, MutOptions{Readers: -1}); got != mc {
		t.Fatal("ShrinkMutation shrank a passing scenario")
	}
}

// A quick seeded soak slice: generated scenarios with concurrency and
// faults on must hold. The full gate lives in scripts/check.sh via
// cmd/oraclerunner -mutate.
func TestMutationSoakSlice(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	rng := rand.New(rand.NewSource(42))
	incremental := 0
	for trial := 0; trial < trials; trial++ {
		mc := GenerateMutation(rng, GenOptions{})
		opt := MutOptions{Faults: []int64{1 + rng.Int63n(4)}}
		out, err := CheckMutation(mc, opt)
		if err != nil {
			t.Fatalf("trial %d: CheckMutation: %v", trial, err)
		}
		if !out.OK() {
			shrunk := ShrinkMutationContext(t.Context(), mc, opt)
			t.Fatalf("trial %d: %d violations; first: %s\nminimal repro:\n%s",
				trial, len(out.Violations), out.Violations[0].String(), shrunk.Script())
		}
		incremental += out.Incremental
	}
	if incremental == 0 {
		t.Error("no generated view tracked incrementally across the soak slice")
	}
}

// Generated update steps must never assign a declared key column —
// that would silently break the KEY contract mid-scenario.
func TestGenerateMutationRespectsKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		mc := GenerateMutation(rng, GenOptions{})
		keyed := map[string]map[string]bool{}
		for _, tb := range mc.Base.Tables {
			m := map[string]bool{}
			for _, k := range tb.Key {
				m[strings.ToLower(k)] = true
			}
			keyed[tb.Name] = m
		}
		for _, st := range mc.Steps {
			if st.Kind != StepUpdate {
				continue
			}
			for _, assign := range strings.Split(st.Set, ", ") {
				col := strings.ToLower(strings.TrimSpace(strings.SplitN(assign, "=", 2)[0]))
				if keyed[st.Table][col] {
					t.Fatalf("trial %d: UPDATE assigns key column %s of %s: %s", trial, col, st.Table, st.SQL())
				}
			}
		}
	}
}
