package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"aggview/internal/datagen"
	"aggview/internal/value"
)

// GenOptions sizes the random instances.
type GenOptions struct {
	// MaxTables bounds the number of base tables (default 2; the second
	// table exists so join queries have something to join with).
	MaxTables int
	// MaxRows bounds the rows per table (default 24). Zero-row tables
	// are generated deliberately: empty inputs are a classic rewrite
	// edge (SUM over no tuples, groups that vanish).
	MaxRows int
	// Domain sizes the value domain (default 4): small domains force
	// the collisions grouping and join queries need.
	Domain int
	// MaxViews bounds the view count (default 2).
	MaxViews int
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxTables == 0 {
		o.MaxTables = 2
	}
	if o.MaxRows == 0 {
		o.MaxRows = 24
	}
	if o.Domain == 0 {
		o.Domain = 4
	}
	if o.MaxViews == 0 {
		o.MaxViews = 2
	}
	return o
}

// colKind is a generated column's type discipline.
type colKind int

const (
	kindInt colKind = iota
	kindFloat
	kindStr
)

// genCol is one generated column; names are globally unique across the
// schema so unqualified references are never ambiguous.
type genCol struct {
	name string
	kind colKind
}

// genTable pairs a TableSpec with its column kinds.
type genTable struct {
	spec *TableSpec
	cols []genCol
}

func (t *genTable) colsOfKind(k colKind) []genCol {
	var out []genCol
	for _, c := range t.cols {
		if c.kind == k {
			out = append(out, c)
		}
	}
	return out
}

// Generate produces one random case: schema, contents, views biased
// toward the paper's shapes, and a query biased so the rewriter finds
// rewritings regularly (view-prefix WHERE clauses with expressible
// residuals, GROUP BY refining the view's grouping, aggregates over the
// view's aggregated columns). About one case in seven is generated with
// no anchoring at all, keeping fully random shapes in the mix.
func Generate(rng *rand.Rand, opt GenOptions) *Case {
	c, _ := generate(rng, opt)
	return c
}

// generate is Generate returning the internal table descriptors too, so
// GenerateWorkload can draw more queries and rows over the same schema.
func generate(rng *rand.Rand, opt GenOptions) (*Case, []*genTable) {
	opt = opt.withDefaults()
	c := &Case{}

	// --- schema and contents ---
	nTables := 1
	if opt.MaxTables > 1 && rng.Intn(2) == 0 {
		nTables = 2 + rng.Intn(opt.MaxTables-1)
	}
	nextName := 0
	var tables []*genTable
	for ti := 0; ti < nTables; ti++ {
		nCols := 2 + rng.Intn(4)
		var cols []genCol
		for ci := 0; ci < nCols; ci++ {
			name := colName(nextName)
			nextName++
			kind := kindInt
			switch rng.Intn(8) {
			case 0:
				kind = kindFloat
			case 1:
				kind = kindStr
			}
			cols = append(cols, genCol{name: name, kind: kind})
		}
		spec := &TableSpec{Name: fmt.Sprintf("T%d", ti)}
		for _, col := range cols {
			spec.Cols = append(spec.Cols, col.name)
		}
		keyed := rng.Intn(4) == 0
		if keyed {
			spec.Key = []string{cols[0].name}
		}
		nRows := rng.Intn(opt.MaxRows + 1)
		gen := func(rng *rand.Rand, ci int) value.Value {
			return randomValue(rng, cols[ci].kind, opt.Domain)
		}
		for r := 0; r < nRows; r++ {
			row := datagen.RandomRow(rng, nCols, gen)
			if keyed {
				// Sequential key values keep the declared key honest.
				row[0] = value.Int(int64(r))
			}
			spec.Rows = append(spec.Rows, row)
		}
		tables = append(tables, &genTable{spec: spec, cols: cols})
		c.Tables = append(c.Tables, spec)
	}

	// --- views (all over the anchor table T0, like the paper's
	// single-block examples) ---
	anchor := tables[0]
	nViews := 1 + rng.Intn(opt.MaxViews)
	for vi := 0; vi < nViews; vi++ {
		c.Views = append(c.Views, &ViewSpec{
			Name: fmt.Sprintf("V%d", vi),
			Def:  genViewDef(rng, anchor, opt),
		})
	}

	// --- query ---
	anchored := rng.Intn(7) != 0
	c.Query = genQuery(rng, tables, &c.Views[0].Def, anchored, opt)
	return c, tables
}

// Workload is a generated serving workload: one random instance plus a
// pool of query shapes over its schema and a row generator for
// mutation barriers. Load harnesses (cmd/loadrunner) replay the pool
// from many concurrent sessions — repeated shapes exercise the serving
// layer's plan-cache hit path, and Rows supplies inserts that respect
// the schema's column kinds and declared keys.
type Workload struct {
	Case    *Case
	Queries []QuerySpec

	tables  []*genTable
	domain  int
	nextKey map[string]int64
}

// GenerateWorkload produces one random instance and nQueries query
// shapes over its schema (the first is the case's own query). The same
// rng state yields the same workload, so a client harness and a server
// loaded from the case's script can be built independently from one
// seed.
func GenerateWorkload(rng *rand.Rand, opt GenOptions, nQueries int) *Workload {
	opt = opt.withDefaults()
	c, tables := generate(rng, opt)
	w := &Workload{Case: c, tables: tables, domain: opt.Domain, nextKey: map[string]int64{}}
	for _, t := range tables {
		w.nextKey[t.spec.Name] = int64(len(t.spec.Rows))
	}
	w.Queries = append(w.Queries, c.Query)
	for len(w.Queries) < nQueries {
		anchored := rng.Intn(7) != 0
		w.Queries = append(w.Queries, genQuery(rng, tables, &c.Views[0].Def, anchored, opt))
	}
	return w
}

// TableNames lists the instance's base tables.
func (w *Workload) TableNames() []string {
	out := make([]string, len(w.tables))
	for i, t := range w.tables {
		out[i] = t.spec.Name
	}
	return out
}

// Rows draws n fresh rows for the named table, honoring its column
// kinds; a declared key column keeps receiving unique sequential values
// so the key stays honest across mutation rounds.
func (w *Workload) Rows(rng *rand.Rand, table string, n int) [][]value.Value {
	for _, t := range w.tables {
		if t.spec.Name != table {
			continue
		}
		rows := make([][]value.Value, 0, n)
		for r := 0; r < n; r++ {
			row := make([]value.Value, len(t.cols))
			for ci, c := range t.cols {
				row[ci] = randomValue(rng, c.kind, w.domain)
			}
			if len(t.spec.Key) > 0 {
				row[0] = value.Int(w.nextKey[table])
				w.nextKey[table]++
			}
			rows = append(rows, row)
		}
		return rows
	}
	return nil
}

// colName maps 0,1,2,... to A,B,...,Z,A1,B1,...
func colName(i int) string {
	s := string(rune('A' + i%26))
	if i >= 26 {
		s += fmt.Sprint(i / 26)
	}
	return s
}

func randomValue(rng *rand.Rand, k colKind, domain int) value.Value {
	switch k {
	case kindFloat:
		// Half-integers are exactly representable, so sums are exact in
		// any accumulation order and equality predicates are crisp.
		return value.Float(float64(rng.Intn(2*domain)) / 2)
	case kindStr:
		return value.Str([]string{"x", "y", "z"}[rng.Intn(3)])
	default:
		return value.Int(int64(rng.Intn(domain)))
	}
}

// renderConst renders a literal of the column's kind for use in a
// predicate.
func renderConst(rng *rand.Rand, k colKind, domain int) string {
	v := randomValue(rng, k, domain)
	return v.String() // quotes strings
}

// genConds emits up to max random equality/comparison conjuncts over
// the table's columns.
func genConds(rng *rand.Rand, t *genTable, max int, domain int) []string {
	var conds []string
	n := rng.Intn(max + 1)
	for i := 0; i < n; i++ {
		col := t.cols[rng.Intn(len(t.cols))]
		if col.kind != kindStr && rng.Intn(4) == 0 {
			// Occasional range predicate.
			op := []string{"<", "<=", ">", ">="}[rng.Intn(4)]
			conds = append(conds, fmt.Sprintf("%s %s %s", col.name, op, renderConst(rng, col.kind, domain)))
			continue
		}
		if same := t.colsOfKind(col.kind); len(same) > 1 && rng.Intn(3) == 0 {
			other := same[rng.Intn(len(same))]
			if other.name != col.name {
				conds = append(conds, col.name+" = "+other.name)
				continue
			}
		}
		conds = append(conds, col.name+" = "+renderConst(rng, col.kind, domain))
	}
	return conds
}

// genViewDef emits a random view over the anchor table: an aggregation
// view ~60% of the time, else conjunctive.
func genViewDef(rng *rand.Rand, t *genTable, opt GenOptions) QuerySpec {
	def := QuerySpec{From: []string{t.spec.Name}}
	def.Where = genConds(rng, t, 2, opt.Domain)
	if rng.Intn(5) < 3 {
		// Aggregation view: groups + aggregates, COUNT included often
		// (the multiplicity carrier most rewrite plans need).
		groups := pickCols(rng, t.cols, 1+rng.Intn(2))
		for _, g := range groups {
			def.GroupBy = append(def.GroupBy, g.name)
			def.Select = append(def.Select, g.name)
		}
		aggCols := aggregableCols(t, groups)
		if len(aggCols) == 0 {
			// Every numeric column is grouped; COUNT is the only
			// aggregate that tolerates any kind.
			def.Select = append(def.Select, "COUNT("+groups[rng.Intn(len(groups))].name+")")
			return def
		}
		a := aggCols[rng.Intn(len(aggCols))]
		if rng.Intn(2) == 0 {
			def.Select = append(def.Select, "SUM("+a.name+")")
		}
		if rng.Intn(2) == 0 {
			def.Select = append(def.Select, "MIN("+a.name+")", "MAX("+a.name+")")
		}
		if rng.Intn(5) != 0 || len(def.Select) == len(groups) {
			def.Select = append(def.Select, "COUNT("+a.name+")")
		}
		return def
	}
	// Conjunctive view; rare DISTINCT exercises the set-semantics gate.
	for _, col := range pickCols(rng, t.cols, 1+rng.Intn(len(t.cols))) {
		def.Select = append(def.Select, col.name)
	}
	def.Distinct = rng.Intn(10) == 0
	return def
}

// aggregableCols returns the numeric columns outside the grouping list.
func aggregableCols(t *genTable, groups []genCol) []genCol {
	grouped := map[string]bool{}
	for _, g := range groups {
		grouped[g.name] = true
	}
	var out []genCol
	for _, c := range t.cols {
		if c.kind != kindStr && !grouped[c.name] {
			out = append(out, c)
		}
	}
	return out
}

// pickCols draws n distinct columns, order-preserving.
func pickCols(rng *rand.Rand, cols []genCol, n int) []genCol {
	if n > len(cols) {
		n = len(cols)
	}
	idx := rng.Perm(len(cols))[:n]
	// Order-preserving so rendered clause lists look natural.
	inSel := map[int]bool{}
	for _, i := range idx {
		inSel[i] = true
	}
	var out []genCol
	for i, c := range cols {
		if inSel[i] {
			out = append(out, c)
		}
	}
	return out
}

// genQuery emits the query under test. When anchored, its WHERE extends
// the view's (the paper's view-prefix shape) and its grouping and
// aggregates stay expressible over the view's output.
func genQuery(rng *rand.Rand, tables []*genTable, view *QuerySpec, anchored bool, opt GenOptions) QuerySpec {
	anchor := tables[0]
	q := QuerySpec{From: []string{anchor.spec.Name}}

	// Optional join with a second table.
	var joined *genTable
	if len(tables) > 1 && rng.Intn(3) == 0 {
		joined = tables[1]
		q.From = append(q.From, joined.spec.Name)
	}

	if anchored {
		q.Where = append(q.Where, view.Where...)
	}
	q.Where = append(q.Where, genConds(rng, anchor, 2, opt.Domain)...)
	if joined != nil {
		q.Where = append(q.Where, genConds(rng, joined, 1, opt.Domain)...)
		if eq := joinCond(rng, anchor, joined); eq != "" {
			q.Where = append(q.Where, eq)
		}
	}

	if rng.Intn(10) < 7 {
		// Aggregation query.
		groupPool := anchor.cols
		if anchored && len(view.GroupBy) > 0 {
			// Refine the view's grouping so condition C2 can hold.
			groupPool = nil
			for _, g := range view.GroupBy {
				groupPool = append(groupPool, findCol(anchor, g))
			}
		}
		groups := pickCols(rng, groupPool, 1+rng.Intn(2))
		for _, g := range groups {
			q.GroupBy = append(q.GroupBy, g.name)
			q.Select = append(q.Select, g.name)
		}
		aggPool := aggregableCols(anchor, groups)
		if anchored {
			if viewAggs := aggedCols(anchor, view); len(viewAggs) > 0 {
				aggPool = viewAggs
			}
		}
		if joined != nil && rng.Intn(3) == 0 {
			if jc := joined.colsOfKind(kindInt); len(jc) > 0 {
				aggPool = append(aggPool, jc[rng.Intn(len(jc))])
			}
		}
		if len(aggPool) == 0 {
			aggPool = []genCol{anchor.cols[0]}
		}
		nAggs := 1 + rng.Intn(2)
		var intAgg string
		for i := 0; i < nAggs; i++ {
			a := aggPool[rng.Intn(len(aggPool))]
			fn := "COUNT"
			if a.kind != kindStr {
				fn = []string{"SUM", "COUNT", "MIN", "MAX", "AVG"}[rng.Intn(5)]
			}
			q.Select = append(q.Select, fn+"("+a.name+")")
			if a.kind == kindInt && fn != "AVG" {
				intAgg = fn + "(" + a.name + ")"
			}
		}
		// HAVING only over exact integer aggregates: float thresholds
		// sit too close to epsilon boundaries to make a crisp oracle.
		if intAgg != "" && rng.Intn(3) == 0 {
			op := []string{">", ">=", "<", "<="}[rng.Intn(4)]
			q.Having = append(q.Having, fmt.Sprintf("%s %s %d", intAgg, op, rng.Intn(2*opt.Domain)))
		}
		return q
	}

	// Conjunctive query.
	pool := anchor.cols
	if joined != nil {
		pool = append(append([]genCol{}, pool...), joined.cols...)
	}
	for _, col := range pickCols(rng, pool, 1+rng.Intn(3)) {
		q.Select = append(q.Select, col.name)
	}
	q.Distinct = rng.Intn(10) < 3
	return q
}

// joinCond links the two tables on a same-kind column pair, or returns
// "" when no pair exists.
func joinCond(rng *rand.Rand, a, b *genTable) string {
	for _, k := range []colKind{kindInt, kindFloat, kindStr} {
		ac, bc := a.colsOfKind(k), b.colsOfKind(k)
		if len(ac) > 0 && len(bc) > 0 {
			return ac[rng.Intn(len(ac))].name + " = " + bc[rng.Intn(len(bc))].name
		}
	}
	return ""
}

// findCol resolves a column name in the table (panics on generator
// inconsistency — the name always came from the same table).
func findCol(t *genTable, name string) genCol {
	for _, c := range t.cols {
		if c.name == name {
			return c
		}
	}
	panic("oracle: generator referenced unknown column " + name)
}

// aggedCols lists the anchor columns the view aggregates (SUM(x) etc.
// in its select list).
func aggedCols(t *genTable, view *QuerySpec) []genCol {
	var out []genCol
	seen := map[string]bool{}
	for _, item := range view.Select {
		open := strings.IndexByte(item, '(')
		if open < 0 {
			continue
		}
		name := strings.TrimSuffix(item[open+1:], ")")
		if !seen[name] {
			seen[name] = true
			out = append(out, findCol(t, name))
		}
	}
	return out
}
