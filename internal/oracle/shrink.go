package oracle

import "context"

// Shrinking: greedily remove structure — views, clauses, rows, tables —
// keeping each reduction only when the case still fails. The strategy
// is a fixpoint of cheap passes rather than delta debugging: cases are
// small (tens of rows, a handful of clauses), so O(parts · checks)
// converges in well under the default budget.

// shrinkBudget is the default bound on the number of Check calls one
// Shrink may spend (Options.ShrinkBudget overrides it).
const shrinkBudget = 400

// Shrink reduces a failing case to a smaller one that still fails under
// the same options. The input is not mutated; the result is the
// smallest failing variant found within the budget (at worst the
// original). A case that did not fail is returned unchanged.
//
// The budget is monotone: because the pass order and each pass's
// candidate order are deterministic, a run with budget b2 > b1 replays
// b1's accept/reject sequence exactly and then keeps reducing, and
// every accepted candidate only removes structure — so a larger budget
// never yields a larger repro.
//
// Shrink is ShrinkContext with a background context.
func Shrink(c *Case, opt Options) *Case {
	//aggvet:ctxflow Background shim by design; ShrinkContext is the bounded variant.
	return ShrinkContext(context.Background(), c, opt)
}

// ShrinkContext is Shrink under a context: every candidate check runs
// under ctx, and once ctx ends no further reductions are attempted —
// the smallest failing variant found so far is returned.
func ShrinkContext(ctx context.Context, c *Case, opt Options) *Case {
	budget := opt.ShrinkBudget
	if budget <= 0 {
		budget = shrinkBudget
	}
	fails := func(cand *Case) bool {
		if budget <= 0 || ctx.Err() != nil {
			return false
		}
		budget--
		out, err := CheckContext(ctx, cand, opt)
		// A candidate the system rejects outright is not a smaller
		// repro of the same failure; discard it.
		return err == nil && !out.OK()
	}
	cur := c.Clone()
	if !fails(cur) {
		return c
	}
	for changed := true; changed && budget > 0; {
		changed = false
		if next, ok := shrinkViews(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkQueryClauses(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkViewClauses(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkRows(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkTables(cur, fails); ok {
			cur, changed = next, true
		}
	}
	return cur
}

// shrinkViews tries dropping whole views.
func shrinkViews(c *Case, fails func(*Case) bool) (*Case, bool) {
	shrunk := false
	for i := 0; i < len(c.Views); {
		cand := c.Clone()
		cand.Views = append(cand.Views[:i], cand.Views[i+1:]...)
		if fails(cand) {
			c, shrunk = cand, true
		} else {
			i++
		}
	}
	return c, shrunk
}

// shrinkQueryClauses tries dropping WHERE/HAVING conjuncts, DISTINCT,
// select items, and GROUP BY columns (together with the bare select
// item referencing them) from the query under test.
func shrinkQueryClauses(c *Case, fails func(*Case) bool) (*Case, bool) {
	shrunk := false
	c, ok := shrinkSpec(c, fails, func(cand *Case) *QuerySpec { return &cand.Query })
	shrunk = shrunk || ok
	return c, shrunk
}

// shrinkViewClauses applies the same clause reduction to each view
// definition.
func shrinkViewClauses(c *Case, fails func(*Case) bool) (*Case, bool) {
	shrunk := false
	for vi := range c.Views {
		vi := vi
		next, ok := shrinkSpec(c, fails, func(cand *Case) *QuerySpec { return &cand.Views[vi].Def })
		if ok {
			c, shrunk = next, true
		}
	}
	return c, shrunk
}

// shrinkSpec reduces one QuerySpec reachable through sel inside a case
// clone.
func shrinkSpec(c *Case, fails func(*Case) bool, sel func(*Case) *QuerySpec) (*Case, bool) {
	shrunk := false
	// Drop WHERE conjuncts one at a time.
	for i := 0; i < len(sel(c).Where); {
		cand := c.Clone()
		q := sel(cand)
		q.Where = append(q.Where[:i], q.Where[i+1:]...)
		if fails(cand) {
			c, shrunk = cand, true
		} else {
			i++
		}
	}
	if sel(c).Distinct {
		cand := c.Clone()
		sel(cand).Distinct = false
		if fails(cand) {
			c, shrunk = cand, true
		}
	}
	// Drop HAVING conjuncts.
	for i := 0; i < len(sel(c).Having); {
		cand := c.Clone()
		q := sel(cand)
		q.Having = append(q.Having[:i], q.Having[i+1:]...)
		if fails(cand) {
			c, shrunk = cand, true
		} else {
			i++
		}
	}
	// Drop select items (keep at least one).
	for i := 0; i < len(sel(c).Select); {
		cand := c.Clone()
		q := sel(cand)
		if len(q.Select) <= 1 {
			break
		}
		dropped := q.Select[i]
		q.Select = append(q.Select[:i], q.Select[i+1:]...)
		// A bare grouping column leaves GROUP BY too, keeping the
		// query well-formed.
		for gi, g := range q.GroupBy {
			if g == dropped {
				q.GroupBy = append(q.GroupBy[:gi], q.GroupBy[gi+1:]...)
				break
			}
		}
		if fails(cand) {
			c, shrunk = cand, true
		} else {
			i++
		}
	}
	return c, shrunk
}

// shrinkRows reduces table contents: first by halves, then row by row.
func shrinkRows(c *Case, fails func(*Case) bool) (*Case, bool) {
	shrunk := false
	for ti := range c.Tables {
		// Halving passes.
		for {
			n := len(c.Tables[ti].Rows)
			if n < 2 {
				break
			}
			half := c.Clone()
			half.Tables[ti].Rows = half.Tables[ti].Rows[:n/2]
			if fails(half) {
				c, shrunk = half, true
				continue
			}
			half = c.Clone()
			half.Tables[ti].Rows = half.Tables[ti].Rows[n/2:]
			if fails(half) {
				c, shrunk = half, true
				continue
			}
			break
		}
		// Single-row passes.
		for i := 0; i < len(c.Tables[ti].Rows); {
			cand := c.Clone()
			t := cand.Tables[ti]
			t.Rows = append(t.Rows[:i], t.Rows[i+1:]...)
			if fails(cand) {
				c, shrunk = cand, true
			} else {
				i++
			}
		}
	}
	return c, shrunk
}

// shrinkTables drops tables the query and views no longer mention.
func shrinkTables(c *Case, fails func(*Case) bool) (*Case, bool) {
	shrunk := false
	for i := 0; i < len(c.Tables); {
		name := c.Tables[i].Name
		if mentionsTable(c, name) {
			i++
			continue
		}
		cand := c.Clone()
		cand.Tables = append(cand.Tables[:i], cand.Tables[i+1:]...)
		if fails(cand) {
			c, shrunk = cand, true
		} else {
			i++
		}
	}
	return c, shrunk
}

func mentionsTable(c *Case, name string) bool {
	for _, f := range c.Query.From {
		if f == name {
			return true
		}
	}
	for _, v := range c.Views {
		for _, f := range v.Def.From {
			if f == name {
				return true
			}
		}
	}
	return false
}
