package oracle

import (
	"fmt"
	"strings"

	"aggview/internal/sqlparser"
	"aggview/internal/value"
)

// Replay parses a script in the format Script emits — CREATE TABLE,
// INSERT, CREATE VIEW and a final SELECT — back into a Case, so a
// failure printed by the test log (or stored in a soak report) can be
// re-checked verbatim. Mutation-soak scripts also pass through here:
// DELETE and UPDATE statements are collapsed into the declared table
// contents (so the Case captures the final instance), and when a
// script carries several SELECTs the last one becomes the Case query —
// the state every earlier statement built up is exactly the state that
// last query ran against.
func Replay(script string) (*Case, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, fmt.Errorf("oracle: replay: %w", err)
	}
	c := &Case{}
	byName := map[string]*TableSpec{}
	sawQuery := false
	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.CreateTable:
			t := &TableSpec{Name: x.Name, Cols: x.Columns}
			if len(x.Keys) > 0 {
				t.Key = x.Keys[0]
			}
			c.Tables = append(c.Tables, t)
			byName[x.Name] = t
		case *sqlparser.Insert:
			t, ok := byName[x.Table]
			if !ok {
				return nil, fmt.Errorf("oracle: replay: INSERT into undeclared table %s", x.Table)
			}
			for _, row := range x.Rows {
				if len(row) != len(t.Cols) {
					return nil, fmt.Errorf("oracle: replay: %s expects %d values, got %d", t.Name, len(t.Cols), len(row))
				}
			}
			t.Rows = append(t.Rows, x.Rows...)
		case *sqlparser.CreateView:
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: view %s: %w", x.Name, err)
			}
			c.Views = append(c.Views, &ViewSpec{Name: x.Name, Cols: x.Columns, Def: spec})
		case *sqlparser.Delete:
			t, ok := byName[x.Table]
			if !ok {
				return nil, fmt.Errorf("oracle: replay: DELETE from undeclared table %s", x.Table)
			}
			if err := collapseDelete(t, x.Where); err != nil {
				return nil, err
			}
		case *sqlparser.Update:
			t, ok := byName[x.Table]
			if !ok {
				return nil, fmt.Errorf("oracle: replay: UPDATE of undeclared table %s", x.Table)
			}
			if err := collapseUpdate(t, x); err != nil {
				return nil, err
			}
		case *sqlparser.QueryStatement:
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: query: %w", err)
			}
			c.Query = spec
			sawQuery = true
		default:
			return nil, fmt.Errorf("oracle: replay: unsupported statement %T", st)
		}
	}
	if !sawQuery {
		return nil, fmt.Errorf("oracle: replay: script has no SELECT statement")
	}
	return c, nil
}

// collapseDelete folds a DELETE into the table's declared rows.
func collapseDelete(t *TableSpec, where sqlparser.Expr) error {
	kept := t.Rows[:0:0]
	for _, row := range t.Rows {
		hit, err := sqlparser.EvalCond(where, t.Cols, row)
		if err != nil {
			return fmt.Errorf("oracle: replay: DELETE FROM %s: %w", t.Name, err)
		}
		if !hit {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	return nil
}

// collapseUpdate folds an UPDATE into the table's declared rows;
// assignment expressions see the old row values.
func collapseUpdate(t *TableSpec, x *sqlparser.Update) error {
	setAt := make([]int, len(x.Set))
	for i, a := range x.Set {
		setAt[i] = -1
		for j, c := range t.Cols {
			if strings.EqualFold(c, a.Col) {
				setAt[i] = j
				break
			}
		}
		if setAt[i] < 0 {
			return fmt.Errorf("oracle: replay: UPDATE %s: unknown column %q", t.Name, a.Col)
		}
	}
	for ri, row := range t.Rows {
		hit, err := sqlparser.EvalCond(x.Where, t.Cols, row)
		if err != nil {
			return fmt.Errorf("oracle: replay: UPDATE %s: %w", t.Name, err)
		}
		if !hit {
			continue
		}
		next := append([]value.Value{}, row...)
		for i, a := range x.Set {
			v, err := sqlparser.EvalExpr(a.Expr, t.Cols, row)
			if err != nil {
				return fmt.Errorf("oracle: replay: UPDATE %s SET %s: %w", t.Name, a.Col, err)
			}
			next[setAt[i]] = v
		}
		t.Rows[ri] = next
	}
	return nil
}

// specFromSelect converts a parsed single-block SELECT back into clause
// strings via the AST's SQL renderer. Derived tables are rejected — the
// oracle's scripts never contain them.
func specFromSelect(sel *sqlparser.Select) (QuerySpec, error) {
	q := QuerySpec{Distinct: sel.Distinct}
	for _, it := range sel.Items {
		s := it.Expr.SQL()
		if it.Alias != "" {
			s += " AS " + it.Alias
		}
		q.Select = append(q.Select, s)
	}
	for _, t := range sel.From {
		if t.Subquery != nil {
			return QuerySpec{}, fmt.Errorf("derived tables are not supported in oracle scripts")
		}
		name := t.Table
		if t.Alias != "" {
			name += " " + t.Alias
		}
		q.From = append(q.From, name)
	}
	for _, e := range sqlparser.Conjuncts(sel.Where) {
		q.Where = append(q.Where, e.SQL())
	}
	for _, g := range sel.GroupBy {
		q.GroupBy = append(q.GroupBy, g.SQL())
	}
	for _, e := range sqlparser.Conjuncts(sel.Having) {
		q.Having = append(q.Having, e.SQL())
	}
	return q, nil
}
