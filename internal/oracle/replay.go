package oracle

import (
	"fmt"

	"aggview/internal/sqlparser"
)

// Replay parses a script in the format Script emits — CREATE TABLE,
// INSERT, CREATE VIEW and one final SELECT — back into a Case, so a
// failure printed by the test log (or stored in a soak report) can be
// re-checked verbatim.
func Replay(script string) (*Case, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, fmt.Errorf("oracle: replay: %w", err)
	}
	c := &Case{}
	byName := map[string]*TableSpec{}
	sawQuery := false
	for _, st := range stmts {
		switch x := st.(type) {
		case *sqlparser.CreateTable:
			t := &TableSpec{Name: x.Name, Cols: x.Columns}
			if len(x.Keys) > 0 {
				t.Key = x.Keys[0]
			}
			c.Tables = append(c.Tables, t)
			byName[x.Name] = t
		case *sqlparser.Insert:
			t, ok := byName[x.Table]
			if !ok {
				return nil, fmt.Errorf("oracle: replay: INSERT into undeclared table %s", x.Table)
			}
			for _, row := range x.Rows {
				if len(row) != len(t.Cols) {
					return nil, fmt.Errorf("oracle: replay: %s expects %d values, got %d", t.Name, len(t.Cols), len(row))
				}
			}
			t.Rows = append(t.Rows, x.Rows...)
		case *sqlparser.CreateView:
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: view %s: %w", x.Name, err)
			}
			c.Views = append(c.Views, &ViewSpec{Name: x.Name, Cols: x.Columns, Def: spec})
		case *sqlparser.QueryStatement:
			if sawQuery {
				return nil, fmt.Errorf("oracle: replay: more than one SELECT statement")
			}
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: query: %w", err)
			}
			c.Query = spec
			sawQuery = true
		default:
			return nil, fmt.Errorf("oracle: replay: unsupported statement %T", st)
		}
	}
	if !sawQuery {
		return nil, fmt.Errorf("oracle: replay: script has no SELECT statement")
	}
	return c, nil
}

// specFromSelect converts a parsed single-block SELECT back into clause
// strings via the AST's SQL renderer. Derived tables are rejected — the
// oracle's scripts never contain them.
func specFromSelect(sel *sqlparser.Select) (QuerySpec, error) {
	q := QuerySpec{Distinct: sel.Distinct}
	for _, it := range sel.Items {
		s := it.Expr.SQL()
		if it.Alias != "" {
			s += " AS " + it.Alias
		}
		q.Select = append(q.Select, s)
	}
	for _, t := range sel.From {
		if t.Subquery != nil {
			return QuerySpec{}, fmt.Errorf("derived tables are not supported in oracle scripts")
		}
		name := t.Table
		if t.Alias != "" {
			name += " " + t.Alias
		}
		q.From = append(q.From, name)
	}
	for _, e := range sqlparser.Conjuncts(sel.Where) {
		q.Where = append(q.Where, e.SQL())
	}
	for _, g := range sel.GroupBy {
		q.GroupBy = append(q.GroupBy, g.SQL())
	}
	for _, e := range sqlparser.Conjuncts(sel.Having) {
		q.Having = append(q.Having, e.SQL())
	}
	return q, nil
}
