package oracle

import (
	"context"
	"fmt"
	"strings"

	"aggview"
	"aggview/internal/core"
	"aggview/internal/engine"
	"aggview/internal/faultinject"
	"aggview/internal/obs"
)

// Options configures a differential check.
type Options struct {
	// Workers lists the engine worker counts each execution runs at;
	// default {1, 0} (serial and GOMAXPROCS), so a nondeterministic
	// parallel kernel is caught as a violation too.
	Workers []int
	// MaxRewritings caps the enumeration per query (default 16 — deep
	// BFS tails repeat the same view shapes and add little evidence).
	MaxRewritings int
	// PaperFaithful checks the paper-faithful rewriter configuration.
	PaperFaithful bool
	// Tamper, when set, mutates each rewriting before execution. It
	// exists for fault injection: tests break an S1–S4 step on purpose
	// and assert the checker notices.
	Tamper func(*core.Rewriting)
	// Faults, when non-empty, adds a cancellation-injection pass to each
	// check: every execution is repeated with a deterministic injector
	// armed per spec, and any run that yields a partial result, an
	// untyped error or a panic — instead of the exact correct bag or a
	// clean typed Canceled — is a violation.
	Faults []faultinject.Spec
	// StorageFaults lists scan countdowns for the storage-fault pass:
	// for each k, every execution is repeated against a FaultStorage
	// backend whose k-th table scan (and every later one) fails with a
	// typed I/O-style error, and the run must end in either the exact
	// correct bag or that clean typed error — never a partial result.
	// Empty with Faults set defaults to {1, 2, 4}; empty with Faults
	// empty disables the pass.
	StorageFaults []int64
	// ShrinkBudget bounds the number of Check calls one Shrink may
	// spend; 0 means the default (400).
	ShrinkBudget int
	// Metrics, when non-nil, is attached to the compiled system so the
	// check's engine executions report kernel counters into it; a
	// snapshot taken when a violation surfaces then rides along with
	// the shrunk repro (cmd/oraclerunner).
	Metrics *obs.Metrics
	// Serve, when set, adds a wire-level pass: the hook wraps the
	// compiled system in a serving stack (the oracle stays
	// transport-agnostic — internal/server supplies OracleExec) and
	// returns an exec function answering SQL through the full wire
	// path. The served answer must be bag-equal to the direct
	// reference at every worker count, on both the cold and the warm
	// (plan-cache hit) path; mismatches surface as violations with
	// Fault "wire" / "wire-cached".
	Serve func(sys *aggview.System) (exec func(ctx context.Context, sql string) (*engine.Relation, error), shutdown func(), err error)
}

func (o Options) withDefaults() Options {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 0}
	}
	if o.MaxRewritings == 0 {
		o.MaxRewritings = 16
	}
	if len(o.StorageFaults) == 0 && len(o.Faults) > 0 {
		o.StorageFaults = []int64{1, 2, 4}
	}
	return o
}

// Violation is one observed inequivalence (or execution failure).
type Violation struct {
	// Workers is the engine worker count the violation appeared at.
	Workers int
	// Used names the views of the offending rewriting; empty when the
	// direct execution itself misbehaved across worker counts.
	Used []string
	// RewritingSQL is the rewritten query (with auxiliary views), or
	// the original query for direct-execution violations.
	RewritingSQL string
	// Fault identifies the injected fault ("site@k") for violations
	// surfaced by the cancellation-injection pass; empty otherwise.
	Fault string
	// Err is set when execution failed outright.
	Err error
	// Want and Got are the direct and the rewritten results; nil when
	// Err is set.
	Want, Got *engine.Relation
}

func (v *Violation) String() string {
	tag := ""
	if v.Fault != "" {
		tag = " fault=" + v.Fault
	}
	if v.Err != nil {
		return fmt.Sprintf("workers=%d using=%v%s: execution failed: %v", v.Workers, v.Used, tag, v.Err)
	}
	return fmt.Sprintf("workers=%d using=%v%s: results differ\n  rewriting: %s\n  want:\n%s\n  got:\n%s",
		v.Workers, v.Used, tag, v.RewritingSQL, indent(v.Want.Sorted().String()), indent(v.Got.Sorted().String()))
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}

// Outcome reports what one Check observed.
type Outcome struct {
	// Rewritings is the number of rewritings the rewriter emitted.
	Rewritings int
	// FaultRuns counts executions performed under an armed injector
	// during the cancellation-injection pass (0 when Options.Faults is
	// empty).
	FaultRuns int
	// Violations lists every inequivalence found (empty: case passed).
	Violations []Violation
}

// OK reports whether the case held.
func (o *Outcome) OK() bool { return len(o.Violations) == 0 }

// Check executes the case's query directly and via every rewriting the
// rewriter emits, at every configured worker count, and records each
// multiset inequality as a violation. The returned error reports a case
// that could not be set up at all (schema or view rejected) — a
// generator defect, not an equivalence violation. Check is CheckContext
// with a background context.
func Check(c *Case, opt Options) (*Outcome, error) {
	return CheckContext(context.Background(), c, opt)
}

// CheckContext is Check under a context: cancellation and deadline
// expiry abort the check between executions with a typed error (no
// partial outcome is returned), and when Options.Faults is set the
// injection pass derives each per-run armed context from ctx.
func CheckContext(ctx context.Context, c *Case, opt Options) (*Outcome, error) {
	opt = opt.withDefaults()
	sys, err := c.CompileContext(ctx, aggview.Options{
		PaperFaithful: opt.PaperFaithful,
		MaxRewritings: opt.MaxRewritings,
	})
	if err != nil {
		return nil, err
	}
	sys.Metrics = opt.Metrics
	sql := c.Query.SQL()

	// Reference: direct execution, serial.
	sys.Opts.Workers = 1
	ref, err := sys.QueryContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("oracle: direct execution: %w", err)
	}
	out := &Outcome{}

	// The direct plan must agree with itself at every worker count
	// (PR 1's determinism contract).
	for _, w := range opt.Workers {
		if w == 1 {
			continue
		}
		sys.Opts.Workers = w
		got, err := sys.QueryContext(ctx, sql)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			out.Violations = append(out.Violations, Violation{Workers: w, RewritingSQL: sql, Err: err})
			continue
		}
		if !engine.ResultsEqualBag(ref, got) {
			out.Violations = append(out.Violations, Violation{
				Workers: w, RewritingSQL: sql, Want: ref, Got: got,
			})
		}
	}

	rws, err := sys.RewritingsContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("oracle: enumerating rewritings: %w", err)
	}
	out.Rewritings = len(rws)
	for _, r := range rws {
		if opt.Tamper != nil {
			opt.Tamper(r)
		}
		for _, w := range opt.Workers {
			sys.Opts.Workers = w
			got, err := sys.ExecRewritingContext(ctx, r)
			if err != nil {
				if ctx.Err() != nil {
					return nil, err
				}
				out.Violations = append(out.Violations, Violation{
					Workers: w, Used: r.Used, RewritingSQL: r.SQL(), Err: err,
				})
				continue
			}
			want := ref
			if r.SetOnly {
				// Section 5 rewritings promise equivalence of the result
				// sets; compare after deduplication so a key-derived
				// set-result proof is not held to a stronger contract
				// than the paper states.
				want, got = dedup(want), dedup(got)
			}
			if !engine.ResultsEqualBag(want, got) {
				out.Violations = append(out.Violations, Violation{
					Workers: w, Used: r.Used, RewritingSQL: r.SQL(), Want: want, Got: got,
				})
			}
		}
	}
	if len(opt.Faults) > 0 {
		if err := faultPass(ctx, sys, sql, ref, rws, opt, out); err != nil {
			return nil, err
		}
	}
	if len(opt.StorageFaults) > 0 {
		if err := storagePass(ctx, sys, sql, ref, rws, opt, out); err != nil {
			return nil, err
		}
	}
	if opt.Serve != nil {
		if err := wirePass(ctx, sys, sql, ref, opt, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// wirePass answers the case's query through the serving stack built by
// opt.Serve and requires bag equality with the direct reference. Each
// worker count issues two requests, so both the cold (singleflight
// populate) and the warm (cache hit) plan-cache paths are differential-
// checked against direct evaluation.
func wirePass(ctx context.Context, sys *aggview.System, sql string, ref *engine.Relation, opt Options, out *Outcome) error {
	exec, shutdown, err := opt.Serve(sys)
	if err != nil {
		return fmt.Errorf("oracle: serve hook: %w", err)
	}
	defer shutdown()
	for _, w := range opt.Workers {
		sys.Opts.Workers = w
		for _, label := range []string{"wire", "wire-cached"} {
			got, err := exec(ctx, sql)
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				out.Violations = append(out.Violations, Violation{Workers: w, RewritingSQL: sql, Fault: label, Err: err})
				continue
			}
			if !engine.ResultsEqualBag(ref, got) {
				out.Violations = append(out.Violations, Violation{
					Workers: w, RewritingSQL: sql, Fault: label, Want: ref, Got: got,
				})
			}
		}
	}
	return nil
}

// dedup drops duplicate tuples (set projection of a relation).
func dedup(r *engine.Relation) *engine.Relation {
	out := engine.NewRelation(r.Attrs...)
	seen := map[string]bool{}
	for _, t := range r.Tuples {
		var b strings.Builder
		for _, v := range t {
			b.WriteString(v.Key())
			b.WriteByte(0)
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out.Add(t...)
		}
	}
	return out
}
