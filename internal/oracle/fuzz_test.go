package oracle

import (
	"math/rand"
	"testing"
)

// FuzzOracleRoundTrip drives the whole oracle from a single fuzzed
// seed: generate an instance, check every rewriting differentially, and
// require the Script/Replay round trip to be lossless. Run with
//
//	go test -fuzz FuzzOracleRoundTrip ./internal/oracle
//
// for open-ended exploration; under plain `go test` the seed corpus
// alone runs.
func FuzzOracleRoundTrip(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 3, 42, 1996, 20260806} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		c := Generate(rng, GenOptions{})
		out, err := Check(c, Options{})
		if err != nil {
			t.Fatalf("seed %d: generated case rejected:\n%s\nerror: %v", seed, c.Script(), err)
		}
		if !out.OK() {
			min := Shrink(c, Options{})
			t.Fatalf("seed %d: equivalence violation\n%s\nminimal repro script:\n%s",
				seed, out.Violations[0].String(), min.Script())
		}
		script := c.Script()
		back, err := Replay(script)
		if err != nil {
			t.Fatalf("seed %d: script does not replay:\n%s\nerror: %v", seed, script, err)
		}
		if got := back.Script(); got != script {
			t.Fatalf("seed %d: round trip not stable:\n--- first\n%s\n--- second\n%s", seed, script, got)
		}
	})
}
