package oracle

// The mutation oracle: seeded scenarios of inserts, deletes, updates
// and queries over a schema with tracked (incrementally maintained)
// views, checked three ways. A serial differential pass asserts after
// every mutation that each maintained materialization is bag-equal to
// a fresh evaluation of its definition, and that every query answered
// through the rewriter agrees with direct evaluation. A concurrent
// pass runs the mutation sequence against readers that pin MVCC
// snapshots and require each snapshot to be internally consistent — a
// reader observing a half-applied batch (view diverging from its
// definition within one snapshot) is a violation. A fault pass re-runs
// the sequence with deterministic cancellations injected at the
// maintenance site and holds every mutation to the atomic-batch
// contract: the exact post-state or a clean typed error with the
// pre-state intact, never a partial application.
//
// Scenarios render as replayable SQL scripts (CREATE TABLE / INSERT /
// CREATE VIEW setup, then INSERT / DELETE / UPDATE / SELECT steps) and
// a shrinker reduces violations to minimal scripts that ReplayMutation
// parses back verbatim.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"aggview"
	"aggview/internal/budget"
	"aggview/internal/engine"
	"aggview/internal/faultinject"
	"aggview/internal/sqlparser"
	"aggview/internal/value"
)

// Step kinds of a mutation scenario.
const (
	StepInsert = "insert"
	StepDelete = "delete"
	StepUpdate = "update"
	StepQuery  = "query"
)

// MutStep is one step of a mutation scenario: a mutation against a
// base table, or a query checked at that point of the history.
type MutStep struct {
	Kind  string
	Table string          // mutation target (insert/delete/update)
	Rows  [][]value.Value // insert rows
	Where string          // delete/update condition; "" = unconditional
	Set   string          // update SET clause body, e.g. "B = B + 1"
	Query *QuerySpec      // query steps only
}

// SQL renders the step as a script statement.
func (s *MutStep) SQL() string {
	switch s.Kind {
	case StepInsert:
		ins := "INSERT INTO " + s.Table + " VALUES "
		for i, row := range s.Rows {
			if i > 0 {
				ins += ", "
			}
			ins += "(" + renderRow(row) + ")"
		}
		return ins
	case StepDelete:
		out := "DELETE FROM " + s.Table
		if s.Where != "" {
			out += " WHERE " + s.Where
		}
		return out
	case StepUpdate:
		out := "UPDATE " + s.Table + " SET " + s.Set
		if s.Where != "" {
			out += " WHERE " + s.Where
		}
		return out
	case StepQuery:
		return s.Query.SQL()
	}
	return "-- unknown step " + s.Kind
}

// clone deep-copies the step.
func (s *MutStep) clone() MutStep {
	out := *s
	out.Rows = nil
	for _, row := range s.Rows {
		out.Rows = append(out.Rows, append([]value.Value{}, row...))
	}
	if s.Query != nil {
		q := s.Query.clone()
		out.Query = &q
	}
	return out
}

// MutationCase is one mutation-oracle scenario: a base instance whose
// tables hold the initial contents and whose views are all tracked,
// plus an ordered step sequence. Base.Query is unused — the queries
// under test travel as steps.
type MutationCase struct {
	Base  *Case
	Steps []MutStep
}

// Script renders the scenario as a replayable SQL script: the setup
// (tables with initial contents, then every view), then the steps in
// order. The last CREATE VIEW statement marks the end of the setup, so
// ReplayMutation can split the script without further markers.
func (mc *MutationCase) Script() string {
	var b strings.Builder
	for _, t := range mc.Base.Tables {
		b.WriteString(t.SQL() + ";\n")
		if len(t.Rows) > 0 {
			ins := "INSERT INTO " + t.Name + " VALUES "
			for i, row := range t.Rows {
				if i > 0 {
					ins += ", "
				}
				ins += "(" + renderRow(row) + ")"
			}
			b.WriteString(ins + ";\n")
		}
	}
	for _, v := range mc.Base.Views {
		b.WriteString(v.SQL() + ";\n")
	}
	for _, st := range mc.Steps {
		b.WriteString(st.SQL() + ";\n")
	}
	return b.String()
}

// Clone deep-copies the scenario for the shrinker.
func (mc *MutationCase) Clone() *MutationCase {
	out := &MutationCase{Base: mc.Base.Clone()}
	for i := range mc.Steps {
		out.Steps = append(out.Steps, mc.Steps[i].clone())
	}
	return out
}

// GenerateMutation produces one random scenario over a generated
// instance: 8–20 steps mixing inserts (respecting declared keys),
// predicate deletes, non-key updates and anchored queries.
func GenerateMutation(rng *rand.Rand, opt GenOptions) *MutationCase {
	opt = opt.withDefaults()
	c, tables := generate(rng, opt)
	w := &Workload{Case: c, tables: tables, domain: opt.Domain, nextKey: map[string]int64{}}
	for _, t := range tables {
		w.nextKey[t.spec.Name] = int64(len(t.spec.Rows))
	}
	mc := &MutationCase{Base: c}
	n := 8 + rng.Intn(13)
	for len(mc.Steps) < n {
		t := tables[rng.Intn(len(tables))]
		switch r := rng.Intn(10); {
		case r < 4:
			mc.Steps = append(mc.Steps, MutStep{
				Kind: StepInsert, Table: t.spec.Name,
				Rows: w.Rows(rng, t.spec.Name, 1+rng.Intn(4)),
			})
		case r < 6:
			mc.Steps = append(mc.Steps, MutStep{
				Kind: StepDelete, Table: t.spec.Name,
				Where: strings.Join(genConds(rng, t, 2, opt.Domain), " AND "),
			})
		case r < 8:
			if step, ok := genUpdate(rng, t, opt); ok {
				mc.Steps = append(mc.Steps, step)
			}
		default:
			anchored := rng.Intn(7) != 0
			q := genQuery(rng, tables, &c.Views[0].Def, anchored, opt)
			mc.Steps = append(mc.Steps, MutStep{Kind: StepQuery, Query: &q})
		}
	}
	return mc
}

// genUpdate draws an UPDATE over the table's non-key columns:
// additive rewrites for numeric columns (exercising delta arithmetic)
// and constant rewrites otherwise. Key columns are never assigned, so
// a declared key stays honest across the scenario.
func genUpdate(rng *rand.Rand, t *genTable, opt GenOptions) (MutStep, bool) {
	keyed := map[string]bool{}
	for _, k := range t.spec.Key {
		keyed[k] = true
	}
	var pool []genCol
	for _, c := range t.cols {
		if !keyed[c.name] {
			pool = append(pool, c)
		}
	}
	if len(pool) == 0 {
		return MutStep{}, false
	}
	var sets []string
	for _, c := range pickCols(rng, pool, 1+rng.Intn(2)) {
		switch {
		case c.kind == kindInt && rng.Intn(2) == 0:
			sets = append(sets, fmt.Sprintf("%s = %s + %d", c.name, c.name, 1+rng.Intn(3)))
		case c.kind == kindFloat && rng.Intn(2) == 0:
			sets = append(sets, fmt.Sprintf("%s = %s + %s", c.name, c.name, renderConst(rng, kindFloat, opt.Domain)))
		default:
			sets = append(sets, c.name+" = "+renderConst(rng, c.kind, opt.Domain))
		}
	}
	return MutStep{
		Kind: StepUpdate, Table: t.spec.Name,
		Set:   strings.Join(sets, ", "),
		Where: strings.Join(genConds(rng, t, 2, opt.Domain), " AND "),
	}, true
}

// MutOptions configures a mutation check.
type MutOptions struct {
	// Readers is the number of concurrent snapshot readers in the
	// concurrency pass; 0 means the default (2), negative disables the
	// pass.
	Readers int
	// Faults lists maintenance-site cancellation countdowns: for each
	// k, the whole step sequence is re-run with an injector canceling at
	// the k-th maintenance observation of every mutation, asserting the
	// atomic-batch contract and that a clean retry succeeds. Empty
	// disables the pass.
	Faults []int64
	// ShrinkBudget bounds the number of CheckMutation calls one
	// ShrinkMutation may spend; 0 means the default (120).
	ShrinkBudget int
	// Tamper, when set, corrupts the compiled system before the serial
	// pass checks it. It exists to prove the checker catches divergence
	// and to exercise the shrinker; production soaks leave it nil.
	Tamper func(*aggview.System)
}

func (o MutOptions) withDefaults() MutOptions {
	if o.Readers == 0 {
		o.Readers = 2
	}
	return o
}

// MutOutcome reports what one CheckMutation observed.
type MutOutcome struct {
	// Steps is the number of scenario steps executed in the serial pass.
	Steps int
	// Incremental counts the tracked views maintained by counting
	// deltas (the rest recompute on every mutation).
	Incremental int
	// FaultRuns counts mutation attempts performed under an armed
	// injector.
	FaultRuns int
	// Violations lists every divergence found (empty: scenario passed).
	Violations []Violation
}

// OK reports whether the scenario held.
func (o *MutOutcome) OK() bool { return len(o.Violations) == 0 }

// compile loads the scenario's base instance into a fresh system with
// every view tracked, returning how many track incrementally.
func (mc *MutationCase) compile(ctx context.Context, opts aggview.Options) (*aggview.System, int, error) {
	sys := aggview.New()
	sys.Opts = opts
	for _, t := range mc.Base.Tables {
		if err := sys.Load(t.SQL()); err != nil {
			return nil, 0, fmt.Errorf("oracle: table %s: %w", t.Name, err)
		}
	}
	for _, v := range mc.Base.Views {
		if err := sys.Load(v.SQL()); err != nil {
			return nil, 0, fmt.Errorf("oracle: view %s: %w", v.Name, err)
		}
	}
	for _, t := range mc.Base.Tables {
		if err := sys.SetRelation(t.Name, t.Relation()); err != nil {
			return nil, 0, fmt.Errorf("oracle: rows of %s: %w", t.Name, err)
		}
	}
	inc := 0
	for _, v := range mc.Base.Views {
		i, err := sys.TrackViewContext(ctx, v.Name)
		if err != nil {
			return nil, 0, fmt.Errorf("oracle: track %s: %w", v.Name, err)
		}
		if i {
			inc++
		}
	}
	return sys, inc, nil
}

// applyStep routes one mutation step through the production facade.
func applyStep(ctx context.Context, sys *aggview.System, st *MutStep) error {
	switch st.Kind {
	case StepInsert:
		return sys.InsertContext(ctx, st.Table, st.Rows...)
	case StepDelete:
		_, err := sys.DeleteContext(ctx, st.Table, st.Where)
		return err
	case StepUpdate:
		_, err := sys.UpdateContext(ctx, st.Table, st.Set, st.Where)
		return err
	}
	return fmt.Errorf("oracle: unknown mutation step kind %q", st.Kind)
}

// applyStepRecover converts a panic during maintenance into an error,
// the same currency as the fault passes of check.go.
func applyStepRecover(ctx context.Context, sys *aggview.System, st *MutStep) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return applyStep(ctx, sys, st)
}

// viewDivergence compares a view's maintained materialization against
// a fresh evaluation of its definition on the live database, returning
// a violation tagged with tag, or nil when they agree.
func viewDivergence(ctx context.Context, sys *aggview.System, v *ViewSpec, tag string) *Violation {
	got, ok := sys.DB.Get(v.Name)
	if !ok {
		return &Violation{RewritingSQL: v.SQL(), Fault: tag, Err: fmt.Errorf("materialization of %s vanished", v.Name)}
	}
	want, err := sys.QueryContext(ctx, v.Def.SQL())
	if err != nil {
		return &Violation{RewritingSQL: v.SQL(), Fault: tag, Err: fmt.Errorf("recomputing %s: %w", v.Name, err)}
	}
	if !engine.ResultsEqualBag(want, got) {
		return &Violation{RewritingSQL: v.SQL(), Fault: tag, Want: want, Got: got}
	}
	return nil
}

// CheckMutation runs the scenario through the serial, concurrent and
// fault passes. The returned error reports a scenario that could not
// be set up at all (schema or view rejected, caller's ctx done) — a
// generator defect, not a maintenance violation. CheckMutation is
// CheckMutationContext with a background context.
func CheckMutation(mc *MutationCase, opt MutOptions) (*MutOutcome, error) {
	//aggvet:ctxflow Background shim by design; CheckMutationContext is the bounded variant.
	return CheckMutationContext(context.Background(), mc, opt)
}

// CheckMutationContext is CheckMutation under a context.
func CheckMutationContext(ctx context.Context, mc *MutationCase, opt MutOptions) (*MutOutcome, error) {
	opt = opt.withDefaults()
	out := &MutOutcome{}
	if err := serialPass(ctx, mc, opt, out); err != nil {
		return nil, err
	}
	if opt.Readers > 0 {
		if err := concurrentPass(ctx, mc, opt, out); err != nil {
			return nil, err
		}
	}
	if len(opt.Faults) > 0 {
		if err := mutationFaultPass(ctx, mc, opt, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// serialPass applies the steps one at a time, re-deriving every view
// from its definition after each mutation and differential-checking
// every query step through the rewriter.
func serialPass(ctx context.Context, mc *MutationCase, opt MutOptions, out *MutOutcome) error {
	sys, inc, err := mc.compile(ctx, aggview.Options{})
	if err != nil {
		return err
	}
	out.Incremental = inc
	if opt.Tamper != nil {
		opt.Tamper(sys)
	}
	for _, v := range mc.Base.Views {
		if v := viewDivergence(ctx, sys, v, "mutate:track"); v != nil {
			out.Violations = append(out.Violations, *v)
		}
	}
	for i := range mc.Steps {
		if err := budget.Check(ctx, "oracle.mutate"); err != nil {
			return err
		}
		st := &mc.Steps[i]
		out.Steps++
		tag := fmt.Sprintf("mutate:step=%d", i)
		if st.Kind == StepQuery {
			sql := st.Query.SQL()
			want, err := sys.QueryContext(ctx, sql)
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				out.Violations = append(out.Violations, Violation{RewritingSQL: sql, Fault: tag, Err: err})
				continue
			}
			got, rw, err := sys.QueryBestContext(ctx, sql)
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				out.Violations = append(out.Violations, Violation{RewritingSQL: sql, Fault: tag, Err: err})
				continue
			}
			var used []string
			if rw != nil {
				used = rw.Used
				if rw.SetOnly {
					want, got = dedup(want), dedup(got)
				}
			}
			if !engine.ResultsEqualBag(want, got) {
				out.Violations = append(out.Violations, Violation{
					Used: used, RewritingSQL: sql, Fault: tag, Want: want, Got: got,
				})
			}
			continue
		}
		if err := applyStep(ctx, sys, st); err != nil {
			if ctx.Err() != nil {
				return err
			}
			out.Violations = append(out.Violations, Violation{RewritingSQL: st.SQL(), Fault: tag, Err: err})
			continue
		}
		for _, v := range mc.Base.Views {
			if viol := viewDivergence(ctx, sys, v, tag+":view="+v.Name); viol != nil {
				out.Violations = append(out.Violations, *viol)
			}
		}
	}
	return nil
}

// concurrentPass replays the mutation steps while reader goroutines
// pin database snapshots and require each to be internally consistent:
// every view bag-equal to its definition evaluated on the same
// snapshot, and every prepared plan bag-equal to direct evaluation on
// the same snapshot. Readers observing mid-batch state — mutations
// half-applied across relations — fail these checks; all goroutines
// are joined before the pass returns.
func concurrentPass(ctx context.Context, mc *MutationCase, opt MutOptions, out *MutOutcome) error {
	sys, _, err := mc.compile(ctx, aggview.Options{})
	if err != nil {
		return err
	}
	// Plans are prepared before the mutator starts: preparation reads
	// the statistics the mutator updates, execution does not.
	type prep struct {
		sql     string
		p       *aggview.Prepared
		setOnly bool
	}
	var preps []prep
	for i := range mc.Steps {
		if mc.Steps[i].Kind != StepQuery {
			continue
		}
		sql := mc.Steps[i].Query.SQL()
		p, err := sys.PrepareContext(ctx, sql)
		if err != nil {
			continue // the serial pass already reported query defects
		}
		setOnly := p.Rewritten() && p.Rewriting().SetOnly
		preps = append(preps, prep{sql: sql, p: p, setOnly: setOnly})
	}

	var mu sync.Mutex
	record := func(v Violation) {
		mu.Lock()
		out.Violations = append(out.Violations, v)
		mu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < opt.Readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for turn := 0; ; turn++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := sys.DB.Snapshot()
				tag := fmt.Sprintf("mutate:concurrent:reader=%d", id)
				for _, v := range mc.Base.Views {
					pinned, ok := snap.Relation(v.Name)
					if !ok {
						record(Violation{RewritingSQL: v.SQL(), Fault: tag, Err: fmt.Errorf("snapshot lost view %s", v.Name)})
						return
					}
					want, err := sys.QueryOnContext(ctx, snap, v.Def.SQL())
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						record(Violation{RewritingSQL: v.SQL(), Fault: tag, Err: err})
						return
					}
					if !engine.ResultsEqualBag(want, pinned) {
						record(Violation{RewritingSQL: v.SQL(), Fault: tag + ":torn-view", Want: want, Got: pinned})
						return
					}
				}
				if len(preps) > 0 {
					pr := preps[turn%len(preps)]
					got, err := sys.ExecPreparedOnContext(ctx, pr.p, snap)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						record(Violation{Used: pr.p.Used, RewritingSQL: pr.sql, Fault: tag, Err: err})
						return
					}
					want, err := sys.QueryOnContext(ctx, snap, pr.sql)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						record(Violation{RewritingSQL: pr.sql, Fault: tag, Err: err})
						return
					}
					if pr.setOnly {
						want, got = dedup(want), dedup(got)
					}
					if !engine.ResultsEqualBag(want, got) {
						record(Violation{Used: pr.p.Used, RewritingSQL: pr.sql, Fault: tag + ":torn-plan", Want: want, Got: got})
						return
					}
				}
			}
		}(r)
	}
	var mutErr error
	for i := range mc.Steps {
		if mc.Steps[i].Kind == StepQuery {
			continue
		}
		if err := applyStep(ctx, sys, &mc.Steps[i]); err != nil {
			mutErr = err
			break
		}
	}
	close(stop)
	wg.Wait()
	if mutErr != nil && ctx.Err() != nil {
		return mutErr
	}
	if mutErr != nil {
		out.Violations = append(out.Violations, Violation{Fault: "mutate:concurrent", Err: mutErr})
	}
	return nil
}

// mutationFaultPass re-runs the mutation sequence once per configured
// countdown k with a deterministic injector armed at the maintenance
// site for every mutation. A firing injector must surface as a clean
// typed Canceled error with every materialization still consistent
// (the batch aborted whole), and a clean retry of the same mutation
// must then succeed — the oracle's exact-state-or-typed-error
// contract for maintenance.
func mutationFaultPass(ctx context.Context, mc *MutationCase, opt MutOptions, out *MutOutcome) error {
	for _, k := range opt.Faults {
		sys, _, err := mc.compile(ctx, aggview.Options{})
		if err != nil {
			return err
		}
		for i := range mc.Steps {
			if err := budget.Check(ctx, "oracle.mutate"); err != nil {
				return err
			}
			st := &mc.Steps[i]
			if st.Kind == StepQuery {
				continue
			}
			tag := fmt.Sprintf("maintain@%d:step=%d", k, i)
			in := faultinject.New(faultinject.SiteMaintain, k)
			fctx, cancel := in.Arm(ctx)
			out.FaultRuns++
			err := applyStepRecover(fctx, sys, st)
			cancel()
			if err != nil {
				if ctx.Err() != nil {
					return err
				}
				if !budget.IsCanceled(err) {
					out.Violations = append(out.Violations, Violation{
						RewritingSQL: st.SQL(), Fault: tag,
						Err: fmt.Errorf("under injection: %w", err),
					})
					continue
				}
				// Clean typed abort: the batch must not have applied at
				// all — every view still matches its definition.
				for _, v := range mc.Base.Views {
					if viol := viewDivergence(ctx, sys, v, tag+":aborted:view="+v.Name); viol != nil {
						out.Violations = append(out.Violations, *viol)
					}
				}
				// A clean retry must succeed and leave the views exact.
				if err := applyStep(ctx, sys, st); err != nil {
					if ctx.Err() != nil {
						return err
					}
					out.Violations = append(out.Violations, Violation{
						RewritingSQL: st.SQL(), Fault: tag,
						Err: fmt.Errorf("retry after clean abort: %w", err),
					})
					continue
				}
			}
			for _, v := range mc.Base.Views {
				if viol := viewDivergence(ctx, sys, v, tag+":view="+v.Name); viol != nil {
					out.Violations = append(out.Violations, *viol)
				}
			}
		}
	}
	return nil
}

// ShrinkMutation reduces a failing scenario to a smaller one that
// still fails under the same options: greedily dropping steps, views
// (keeping at least one — a scenario without a tracked view checks
// nothing), rows of insert steps and initial contents, then unused
// tables, to a fixpoint within the budget. ShrinkMutation is
// ShrinkMutationContext with a background context.
func ShrinkMutation(mc *MutationCase, opt MutOptions) *MutationCase {
	//aggvet:ctxflow Background shim by design; ShrinkMutationContext is the bounded variant.
	return ShrinkMutationContext(context.Background(), mc, opt)
}

// ShrinkMutationContext is ShrinkMutation under a context: once ctx
// ends no further reductions are attempted and the smallest failing
// variant found so far is returned.
func ShrinkMutationContext(ctx context.Context, mc *MutationCase, opt MutOptions) *MutationCase {
	budget := opt.ShrinkBudget
	if budget <= 0 {
		budget = 120
	}
	fails := func(cand *MutationCase) bool {
		if budget <= 0 || ctx.Err() != nil {
			return false
		}
		budget--
		out, err := CheckMutationContext(ctx, cand, opt)
		return err == nil && !out.OK()
	}
	cur := mc.Clone()
	if !fails(cur) {
		return mc
	}
	for changed := true; changed && budget > 0; {
		changed = false
		if next, ok := shrinkSteps(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkMutViews(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkMutRows(cur, fails); ok {
			cur, changed = next, true
		}
		if next, ok := shrinkMutTables(cur, fails); ok {
			cur, changed = next, true
		}
	}
	return cur
}

// shrinkSteps tries dropping whole steps.
func shrinkSteps(mc *MutationCase, fails func(*MutationCase) bool) (*MutationCase, bool) {
	shrunk := false
	for i := 0; i < len(mc.Steps); {
		cand := mc.Clone()
		cand.Steps = append(cand.Steps[:i], cand.Steps[i+1:]...)
		if fails(cand) {
			mc, shrunk = cand, true
		} else {
			i++
		}
	}
	return mc, shrunk
}

// shrinkMutViews tries dropping views, keeping at least one.
func shrinkMutViews(mc *MutationCase, fails func(*MutationCase) bool) (*MutationCase, bool) {
	shrunk := false
	for i := 0; i < len(mc.Base.Views) && len(mc.Base.Views) > 1; {
		cand := mc.Clone()
		cand.Base.Views = append(cand.Base.Views[:i], cand.Base.Views[i+1:]...)
		if fails(cand) {
			mc, shrunk = cand, true
		} else {
			i++
		}
	}
	return mc, shrunk
}

// shrinkMutRows reduces initial table contents and insert-step rows.
func shrinkMutRows(mc *MutationCase, fails func(*MutationCase) bool) (*MutationCase, bool) {
	shrunk := false
	for ti := range mc.Base.Tables {
		for i := 0; i < len(mc.Base.Tables[ti].Rows); {
			cand := mc.Clone()
			t := cand.Base.Tables[ti]
			t.Rows = append(t.Rows[:i], t.Rows[i+1:]...)
			if fails(cand) {
				mc, shrunk = cand, true
			} else {
				i++
			}
		}
	}
	for si := range mc.Steps {
		if mc.Steps[si].Kind != StepInsert {
			continue
		}
		for i := 0; i < len(mc.Steps[si].Rows) && len(mc.Steps[si].Rows) > 1; {
			cand := mc.Clone()
			st := &cand.Steps[si]
			st.Rows = append(st.Rows[:i], st.Rows[i+1:]...)
			if fails(cand) {
				mc, shrunk = cand, true
			} else {
				i++
			}
		}
	}
	return mc, shrunk
}

// shrinkMutTables drops tables nothing references anymore.
func shrinkMutTables(mc *MutationCase, fails func(*MutationCase) bool) (*MutationCase, bool) {
	shrunk := false
	for i := 0; i < len(mc.Base.Tables); {
		name := mc.Base.Tables[i].Name
		if mentionsTable(mc.Base, name) || stepsMention(mc, name) {
			i++
			continue
		}
		cand := mc.Clone()
		cand.Base.Tables = append(cand.Base.Tables[:i], cand.Base.Tables[i+1:]...)
		if fails(cand) {
			mc, shrunk = cand, true
		} else {
			i++
		}
	}
	return mc, shrunk
}

func stepsMention(mc *MutationCase, name string) bool {
	for i := range mc.Steps {
		st := &mc.Steps[i]
		if st.Table == name {
			return true
		}
		if st.Kind == StepQuery {
			for _, f := range st.Query.From {
				if f == name || strings.HasPrefix(f, name+" ") {
					return true
				}
			}
		}
	}
	return false
}

// ReplayMutation parses a script in the format Script emits back into
// a MutationCase: everything up to the last CREATE VIEW is setup,
// every later statement is a step. Shrunk repros from the soak replay
// verbatim.
func ReplayMutation(script string) (*MutationCase, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, fmt.Errorf("oracle: replay: %w", err)
	}
	lastView := -1
	for i, st := range stmts {
		if _, ok := st.(*sqlparser.CreateView); ok {
			lastView = i
		}
	}
	if lastView < 0 {
		return nil, fmt.Errorf("oracle: replay: mutation script declares no view")
	}
	mc := &MutationCase{Base: &Case{}}
	byName := map[string]*TableSpec{}
	for i, st := range stmts {
		setup := i <= lastView
		switch x := st.(type) {
		case *sqlparser.CreateTable:
			if !setup {
				return nil, fmt.Errorf("oracle: replay: CREATE TABLE %s after the views", x.Name)
			}
			t := &TableSpec{Name: x.Name, Cols: x.Columns}
			if len(x.Keys) > 0 {
				t.Key = x.Keys[0]
			}
			mc.Base.Tables = append(mc.Base.Tables, t)
			byName[x.Name] = t
		case *sqlparser.CreateView:
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: view %s: %w", x.Name, err)
			}
			mc.Base.Views = append(mc.Base.Views, &ViewSpec{Name: x.Name, Cols: x.Columns, Def: spec})
		case *sqlparser.Insert:
			t, ok := byName[x.Table]
			if !ok {
				return nil, fmt.Errorf("oracle: replay: INSERT into undeclared table %s", x.Table)
			}
			for _, row := range x.Rows {
				if len(row) != len(t.Cols) {
					return nil, fmt.Errorf("oracle: replay: %s expects %d values, got %d", t.Name, len(t.Cols), len(row))
				}
			}
			if setup {
				t.Rows = append(t.Rows, x.Rows...)
			} else {
				mc.Steps = append(mc.Steps, MutStep{Kind: StepInsert, Table: x.Table, Rows: x.Rows})
			}
		case *sqlparser.Delete:
			if setup {
				return nil, fmt.Errorf("oracle: replay: DELETE before the views")
			}
			where := ""
			if x.Where != nil {
				where = x.Where.SQL()
			}
			mc.Steps = append(mc.Steps, MutStep{Kind: StepDelete, Table: x.Table, Where: where})
		case *sqlparser.Update:
			if setup {
				return nil, fmt.Errorf("oracle: replay: UPDATE before the views")
			}
			var sets []string
			for _, a := range x.Set {
				sets = append(sets, a.Col+" = "+a.Expr.SQL())
			}
			where := ""
			if x.Where != nil {
				where = x.Where.SQL()
			}
			mc.Steps = append(mc.Steps, MutStep{Kind: StepUpdate, Table: x.Table, Set: strings.Join(sets, ", "), Where: where})
		case *sqlparser.QueryStatement:
			if setup {
				return nil, fmt.Errorf("oracle: replay: SELECT before the views")
			}
			spec, err := specFromSelect(x.Query)
			if err != nil {
				return nil, fmt.Errorf("oracle: replay: query: %w", err)
			}
			mc.Steps = append(mc.Steps, MutStep{Kind: StepQuery, Query: &spec})
		default:
			return nil, fmt.Errorf("oracle: replay: unsupported statement %T", st)
		}
	}
	return mc, nil
}
