package oracle

import (
	"context"
	"math/rand"
	"testing"

	"aggview/internal/budget"
	"aggview/internal/core"
	"aggview/internal/faultinject"
	"aggview/internal/ir"
	"aggview/internal/value"
)

func TestCheckContextCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Generate(rng, GenOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := CheckContext(ctx, c, Options{})
	if out != nil {
		t.Fatal("canceled check returned a partial outcome")
	}
	if !budget.IsCanceled(err) {
		t.Fatalf("want typed Canceled, got %v", err)
	}
}

// TestOracleFaultInjectionPass soaks the harness contract over random
// instances: with cancellation injected at every site, each execution
// must produce either the exact correct bag or a clean typed Canceled —
// the pass reports any partial result, untyped error, or panic as a
// violation, and this suite demands zero of them.
func TestOracleFaultInjectionPass(t *testing.T) {
	var faults []faultinject.Spec
	for _, site := range faultinject.Sites {
		for _, k := range []int64{1, 7, 64} {
			faults = append(faults, faultinject.Spec{Site: site, K: k})
		}
	}
	opt := Options{Faults: faults}
	trials := 60
	if testing.Short() {
		trials = 20
	}
	rng := rand.New(rand.NewSource(propertySeed + 2))
	runs := 0
	for trial := 0; trial < trials; trial++ {
		c := Generate(rng, GenOptions{})
		out, err := Check(c, opt)
		if err != nil {
			t.Fatalf("trial %d: generated case rejected:\n%s\nerror: %v", trial, c.Script(), err)
		}
		if !out.OK() {
			t.Fatalf("trial %d: fault-injection contract violated\n%s\nscript:\n%s",
				trial, out.Violations[0].String(), c.Script())
		}
		runs += out.FaultRuns
	}
	if runs == 0 {
		t.Fatal("fault pass never executed a run")
	}
	t.Logf("oracle: %d injected executions held the contract over %d instances", runs, trials)
}

// TestOracleStorageFaultPass soaks the error-injection contract: with a
// FaultStorage backend failing the k-th scan on, every execution must
// produce either the exact correct bag or a clean typed injected error —
// never a partial result. k=1 fails the very first scan (every plan
// aborts), larger k let some plans finish, so both arms of the contract
// are exercised.
func TestOracleStorageFaultPass(t *testing.T) {
	opt := Options{StorageFaults: []int64{1, 2, 4, 64}}
	trials := 40
	if testing.Short() {
		trials = 15
	}
	rng := rand.New(rand.NewSource(propertySeed + 3))
	runs := 0
	for trial := 0; trial < trials; trial++ {
		c := Generate(rng, GenOptions{})
		out, err := Check(c, opt)
		if err != nil {
			t.Fatalf("trial %d: generated case rejected:\n%s\nerror: %v", trial, c.Script(), err)
		}
		if !out.OK() {
			t.Fatalf("trial %d: storage-fault contract violated\n%s\nscript:\n%s",
				trial, out.Violations[0].String(), c.Script())
		}
		runs += out.FaultRuns
	}
	if runs == 0 {
		t.Fatal("storage fault pass never executed a run")
	}
	t.Logf("oracle: %d storage-faulted executions held the contract over %d instances", runs, trials)
}

// tamperAlwaysFail appends a contradiction to every rewriting, so any
// rewriting-bearing case with a nonempty direct answer fails — a
// deterministic failure source for shrink tests.
func tamperAlwaysFail(r *core.Rewriting) {
	q := r.Query.Clone()
	q.Where = append(q.Where, ir.Pred{
		Op: ir.OpEq,
		L:  ir.ConstTerm(value.Int(1)),
		R:  ir.ConstTerm(value.Int(2)),
	})
	r.Query = q
}

// TestShrinkBudgetMonotonic pins the shrink budget's monotonicity: a
// larger budget never yields a larger repro. The pass and candidate
// orders are deterministic, so a bigger-budget run replays the smaller
// run's accept/reject sequence exactly and then keeps reducing, and
// every accepted reduction removes structure.
func TestShrinkBudgetMonotonic(t *testing.T) {
	opt := Options{Tamper: tamperAlwaysFail}
	rng := rand.New(rand.NewSource(31))
	tested := 0
	for trial := 0; trial < 300 && tested < 3; trial++ {
		c := Generate(rng, GenOptions{MaxRows: 40})
		out, err := Check(c, opt)
		if err != nil || out.OK() {
			continue
		}
		tested++
		prev := -1
		for _, b := range []int{1, 5, 25, 100, 400} {
			o := opt
			o.ShrinkBudget = b
			min := Shrink(c, o)
			if rout, err := Check(min, o); err != nil || rout.OK() {
				t.Fatalf("budget %d: shrunk case no longer fails:\n%s", b, min.Script())
			}
			s := size(min)
			if prev >= 0 && s > prev {
				t.Fatalf("budget %d grew the repro: size %d after %d at the smaller budget\n%s",
					b, s, prev, min.Script())
			}
			prev = s
		}
	}
	if tested == 0 {
		t.Skip("no instance triggered the synthetic fault (generator drift)")
	}
}
