package oracle

import (
	"math/rand"
	"testing"

	"aggview/internal/core"
	"aggview/internal/ir"
	"aggview/internal/value"
)

// propertySeed fixes the suite's instance stream: failures print both
// the per-case seed and the shrunk script, so either replays the bug.
const propertySeed = 20260806

// TestOracleProperty is the bounded-budget property suite: every
// rewriting of every generated instance must be multiset-equivalent to
// the direct answer at every worker count. On failure it shrinks the
// case and prints a replayable SQL script.
func TestOracleProperty(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 120
	}
	runPropertySuite(t, trials, Options{})
}

// TestOraclePropertyPaperFaithful repeats a smaller sweep under the
// paper-faithful rewriter configuration (Va constructions, no
// arithmetic inside aggregates).
func TestOraclePropertyPaperFaithful(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 50
	}
	runPropertySuite(t, trials, Options{PaperFaithful: true})
}

func runPropertySuite(t *testing.T, trials int, opt Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(propertySeed))
	rewritings := 0
	for trial := 0; trial < trials; trial++ {
		c := Generate(rng, GenOptions{})
		out, err := Check(c, opt)
		if err != nil {
			t.Fatalf("trial %d: generated case rejected (generator bug):\n%s\nerror: %v", trial, c.Script(), err)
		}
		rewritings += out.Rewritings
		if !out.OK() {
			min := Shrink(c, opt)
			t.Fatalf("trial %d: equivalence violation\n%s\nminimal repro script:\n%s",
				trial, out.Violations[0].String(), min.Script())
		}
	}
	// The suite is only meaningful if the generator regularly produces
	// instances the rewriter can act on.
	if rewritings < trials/5 {
		t.Fatalf("only %d rewritings over %d trials: generator bias lost its teeth", rewritings, trials)
	}
	t.Logf("oracle: %d rewritings verified over %d instances", rewritings, trials)
}

// tamperDropResidual deletes the last WHERE predicate of the rewritten
// query — undoing part of step S3 (the residual conditions kept after
// view incorporation).
func tamperDropResidual(r *core.Rewriting) {
	if len(r.Query.Where) > 0 {
		r.Query = cloneQuery(r.Query)
		r.Query.Where = r.Query.Where[:len(r.Query.Where)-1]
	}
}

// tamperSwapAgg replaces the first SUM or COUNT in the rewritten select
// list with MAX — breaking the step-S4 aggregate reconstruction.
func tamperSwapAgg(r *core.Rewriting) {
	q := cloneQuery(r.Query)
	for i, it := range q.Select {
		if a, ok := it.Expr.(*ir.Agg); ok && (a.Func == ir.AggSum || a.Func == ir.AggCount) {
			q.Select[i].Expr = &ir.Agg{Func: ir.AggMax, Arg: a.Arg, Star: a.Star}
			r.Query = q
			return
		}
	}
}

func cloneQuery(q *ir.Query) *ir.Query { return q.Clone() }

// TestOracleCatchesInjectedFaults deliberately breaks a rewrite step on
// every emitted rewriting and asserts the checker flags it, the
// shrinker produces a smaller case that still fails, and the shrunk
// script replays to a failing case. This is the end-to-end proof the
// oracle has teeth.
func TestOracleCatchesInjectedFaults(t *testing.T) {
	faults := []struct {
		name   string
		tamper func(*core.Rewriting)
	}{
		{"drop-residual-S3", tamperDropResidual},
		{"swap-aggregate-S4", tamperSwapAgg},
	}
	for _, fault := range faults {
		t.Run(fault.name, func(t *testing.T) {
			opt := Options{Tamper: fault.tamper}
			rng := rand.New(rand.NewSource(propertySeed + 1))
			for trial := 0; trial < 400; trial++ {
				c := Generate(rng, GenOptions{})
				out, err := Check(c, opt)
				if err != nil || out.OK() {
					continue // fault not triggered by this instance
				}
				min := Shrink(c, opt)
				if size(min) > size(c) {
					t.Fatalf("shrinking grew the case: %d -> %d", size(c), size(min))
				}
				script := min.Script()
				replayed, err := Replay(script)
				if err != nil {
					t.Fatalf("shrunk script does not replay:\n%s\nerror: %v", script, err)
				}
				rout, err := Check(replayed, opt)
				if err != nil {
					t.Fatalf("replayed case rejected:\n%s\nerror: %v", script, err)
				}
				if rout.OK() {
					t.Fatalf("replayed case no longer fails:\n%s", script)
				}
				t.Logf("fault %s caught at trial %d; shrunk script:\n%s", fault.name, trial, script)
				return
			}
			t.Fatalf("fault %s never caught in 400 trials: oracle is blind to it", fault.name)
		})
	}
}

// size measures a case for shrink-monotonicity assertions.
func size(c *Case) int {
	n := len(c.Views) + len(c.Query.Select) + len(c.Query.Where) + len(c.Query.Having)
	for _, t := range c.Tables {
		n += 1 + len(t.Rows)
	}
	return n
}

// TestScriptRoundTrip checks Script/Replay is lossless for the
// generator's whole output distribution.
func TestScriptRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		c := Generate(rng, GenOptions{})
		script := c.Script()
		back, err := Replay(script)
		if err != nil {
			t.Fatalf("trial %d: script does not replay:\n%s\nerror: %v", trial, script, err)
		}
		if got := back.Script(); got != script {
			t.Fatalf("trial %d: round trip not stable:\n--- first\n%s\n--- second\n%s", trial, script, got)
		}
	}
}

// TestShrinkReducesRows pins the row-shrinking machinery on a synthetic
// always-failing predicate (a Tamper that clobbers results makes every
// rewriting-bearing case fail), asserting the minimized case is much
// smaller than the original.
func TestShrinkReducesRows(t *testing.T) {
	opt := Options{Tamper: func(r *core.Rewriting) {
		q := r.Query.Clone()
		q.Where = append(q.Where, ir.Pred{
			Op: ir.OpEq,
			L:  ir.ConstTerm(value.Int(1)),
			R:  ir.ConstTerm(value.Int(2)),
		})
		r.Query = q
	}}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		c := Generate(rng, GenOptions{MaxRows: 40})
		out, err := Check(c, opt)
		if err != nil || out.OK() {
			continue
		}
		// The tamper empties every rewriting, so any nonempty direct
		// answer fails; the minimal repro needs very few rows.
		min := Shrink(c, opt)
		total := 0
		for _, tb := range min.Tables {
			total += len(tb.Rows)
		}
		if total > 4 {
			t.Fatalf("shrunk case still has %d rows:\n%s", total, min.Script())
		}
		if out, err := Check(min, opt); err != nil || out.OK() {
			t.Fatalf("shrunk case no longer fails:\n%s", min.Script())
		}
		return
	}
	t.Skip("no instance triggered the synthetic fault (generator drift)")
}
