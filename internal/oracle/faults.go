package oracle

// The cancellation-injection pass: re-run every execution of a case
// with a deterministic fault injector armed, and hold the engine to the
// harness contract — the k-th row / candidate / cache access cancels
// the context, and the run must end in either the exact correct bag
// (the cancel arrived after the work) or a clean typed Canceled error.
// A partial result, an untyped error, or a panic is a violation, the
// same currency as a multiset inequality.

import (
	"context"
	"fmt"

	"aggview"
	"aggview/internal/budget"
	"aggview/internal/core"
	"aggview/internal/engine"
	"aggview/internal/faultinject"
)

// faultPass runs the direct query and every rewriting once per
// (fault spec, worker count) with a fresh armed injector, recording
// contract breaches as violations. A cancellation of the caller's ctx
// itself aborts the pass with that error.
func faultPass(ctx context.Context, sys *aggview.System, sql string, ref *engine.Relation, rws []*core.Rewriting, opt Options, out *Outcome) error {
	for _, spec := range opt.Faults {
		for _, w := range opt.Workers {
			if err := budget.Check(ctx, "oracle.faults"); err != nil {
				return err
			}
			sys.Opts.Workers = w
			tag := fmt.Sprintf("%s@%d", spec.Site, spec.K)

			run := func(used []string, shownSQL string, setOnly bool, exec func(context.Context) (*engine.Relation, error)) {
				out.FaultRuns++
				in := faultinject.NewSpec(spec)
				fctx, cancel := in.Arm(ctx)
				defer cancel()
				got, err := execRecover(fctx, exec)
				if err != nil {
					if budget.IsCanceled(err) && got == nil {
						return // clean typed abort: contract held
					}
					out.Violations = append(out.Violations, Violation{
						Workers: w, Used: used, RewritingSQL: shownSQL, Fault: tag,
						Err: fmt.Errorf("under injection: %w", err),
					})
					return
				}
				want := ref
				if setOnly {
					want, got = dedup(want), dedup(got)
				}
				if !engine.ResultsEqualBag(want, got) {
					out.Violations = append(out.Violations, Violation{
						Workers: w, Used: used, RewritingSQL: shownSQL, Fault: tag,
						Want: want, Got: got,
					})
				}
			}

			run(nil, sql, false, func(fctx context.Context) (*engine.Relation, error) {
				return sys.QueryContext(fctx, sql)
			})
			for _, r := range rws {
				r := r
				run(r.Used, r.SQL(), r.SetOnly, func(fctx context.Context) (*engine.Relation, error) {
					return sys.ExecRewritingContext(fctx, r)
				})
			}
		}
	}
	return nil
}

// storagePass re-runs every execution of the case against an
// engine.FaultStorage backend that fails the k-th table scan (and every
// later one) with a typed I/O-style error, for each configured k. The
// contract mirrors the cancellation pass, but for error injection: the
// run must end in either the exact correct bag (every scan the plan
// needed happened before the countdown hit zero) or a clean typed
// injected error — never a partial result and never an untyped failure.
// Each run gets a fresh armed backend; the pass restores the system's
// storage to its database before returning.
func storagePass(ctx context.Context, sys *aggview.System, sql string, ref *engine.Relation, rws []*core.Rewriting, opt Options, out *Outcome) error {
	defer func() { sys.Store = nil }()
	for _, k := range opt.StorageFaults {
		for _, w := range opt.Workers {
			if err := budget.Check(ctx, "oracle.faults"); err != nil {
				return err
			}
			sys.Opts.Workers = w
			tag := fmt.Sprintf("storage@%d", k)

			run := func(used []string, shownSQL string, setOnly bool, exec func(context.Context) (*engine.Relation, error)) {
				out.FaultRuns++
				sys.Store = engine.NewFaultStorage(sys.DB, k)
				got, err := execRecover(ctx, exec)
				if err != nil {
					if (faultinject.IsInjected(err) || budget.IsCanceled(err)) && got == nil {
						return // clean typed abort: contract held
					}
					out.Violations = append(out.Violations, Violation{
						Workers: w, Used: used, RewritingSQL: shownSQL, Fault: tag,
						Err: fmt.Errorf("under storage fault: %w", err),
					})
					return
				}
				want := ref
				if setOnly {
					want, got = dedup(want), dedup(got)
				}
				if !engine.ResultsEqualBag(want, got) {
					out.Violations = append(out.Violations, Violation{
						Workers: w, Used: used, RewritingSQL: shownSQL, Fault: tag,
						Want: want, Got: got,
					})
				}
			}

			run(nil, sql, false, func(fctx context.Context) (*engine.Relation, error) {
				return sys.QueryContext(fctx, sql)
			})
			for _, r := range rws {
				r := r
				run(r.Used, r.SQL(), r.SetOnly, func(fctx context.Context) (*engine.Relation, error) {
					return sys.ExecRewritingContext(fctx, r)
				})
			}
		}
	}
	return nil
}

// execRecover converts a panic under injection into an error, so the
// harness reports it as a violation instead of tearing the soak down.
func execRecover(ctx context.Context, exec func(context.Context) (*engine.Relation, error)) (res *engine.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	return exec(ctx)
}
