package cost

import (
	"testing"

	"aggview/internal/ir"
)

func src() ir.MapSource {
	return ir.MapSource{
		"Calls":         {"Call_Id", "Plan_Id", "Year", "Charge"},
		"Calling_Plans": {"Plan_Id", "Plan_Name"},
	}
}

func TestStatsLookup(t *testing.T) {
	s := Stats{"Calls": 1e6}
	if c, ok := s.Card("calls"); !ok || c != 1e6 {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := s.Card("nope"); ok {
		t.Error("unknown source")
	}
}

func TestViewBeatsBaseTables(t *testing.T) {
	reg := ir.NewRegistry()
	vq := ir.MustBuild("SELECT Plan_Id, Year, SUM(Charge) FROM Calls GROUP BY Plan_Id, Year", src())
	v, err := ir.NewViewDef("V1", vq)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(v); err != nil {
		t.Fatal(err)
	}
	est := &Estimator{Stats: Stats{"Calls": 1e6, "Calling_Plans": 10, "V1": 120}, Views: reg}

	full := ir.MultiSource{src(), reg}
	base := ir.MustBuild("SELECT Plan_Id, SUM(Charge) FROM Calls WHERE Year = 1995 GROUP BY Plan_Id", src())
	view := ir.MustBuild("SELECT Plan_Id, SUM(sum_Charge) FROM V1 WHERE Year = 1995 GROUP BY Plan_Id", full)
	cb, cv := est.Estimate(base), est.Estimate(view)
	if cv >= cb {
		t.Errorf("view plan should be cheaper: view=%f base=%f", cv, cb)
	}
}

func TestUnmaterializedViewEstimatedFromDefinition(t *testing.T) {
	reg := ir.NewRegistry()
	vq := ir.MustBuild("SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id", src())
	v, _ := ir.NewViewDef("V2", vq)
	_ = reg.Add(v)
	est := &Estimator{Stats: Stats{"Calls": 1e6}, Views: reg}
	full := ir.MultiSource{src(), reg}
	q := ir.MustBuild("SELECT Plan_Id, sum_Charge FROM V2", full)
	c := est.Estimate(q)
	if c <= 0 {
		t.Fatalf("cost must be positive: %f", c)
	}
	// Grouped definition: estimate should be far below the base table.
	if c >= 1e6 {
		t.Errorf("grouped view estimate too large: %f", c)
	}
}

func TestSelectivities(t *testing.T) {
	est := &Estimator{Stats: Stats{"Calls": 1000, "Calling_Plans": 10}}
	join := ir.MustBuild("SELECT Call_Id FROM Calls, Calling_Plans WHERE Calls.Plan_Id = Calling_Plans.Plan_Id", src())
	cross := ir.MustBuild("SELECT Call_Id FROM Calls, Calling_Plans", src())
	if est.Estimate(join) >= est.Estimate(cross) {
		t.Error("equality join must be estimated below a cross product")
	}
	filtered := ir.MustBuild("SELECT Call_Id FROM Calls WHERE Year = 1995", src())
	scan := ir.MustBuild("SELECT Call_Id FROM Calls", src())
	if est.Estimate(filtered) >= est.Estimate(scan) {
		t.Error("filter must reduce estimated cost")
	}
	rng := ir.MustBuild("SELECT Call_Id FROM Calls WHERE Year < 1995", src())
	neq := ir.MustBuild("SELECT Call_Id FROM Calls WHERE Year <> 1995", src())
	if est.Estimate(filtered) >= est.Estimate(rng) || est.Estimate(rng) >= est.Estimate(neq) {
		t.Error("selectivity ordering eq < range < neq violated")
	}
}

func TestUnknownSourceDefault(t *testing.T) {
	est := &Estimator{Stats: Stats{}}
	q := ir.MustBuild("SELECT Call_Id FROM Calls", src())
	if c := est.Estimate(q); c <= 0 {
		t.Errorf("unknown sources need a neutral default, got %f", c)
	}
}

func TestGlobalAggregateSingleRow(t *testing.T) {
	reg := ir.NewRegistry()
	vq := ir.MustBuild("SELECT SUM(Charge) FROM Calls", src())
	v, _ := ir.NewViewDef("VG", vq)
	_ = reg.Add(v)
	est := &Estimator{Stats: Stats{"Calls": 1e6}, Views: reg}
	if rows := est.outputRows(vq, 0); rows != 1 {
		t.Errorf("global aggregate output should be 1 row, got %f", rows)
	}
}
