// Package cost provides a simple cardinality-based cost model for
// ranking rewritings, in the spirit of the paper's Section 6 discussion
// of integrating view usability into a cost-based optimizer [CKPS95].
//
// The model is deliberately System-R-coarse: per-predicate default
// selectivities over base cardinalities. Its purpose is to prefer small
// materialized summary tables over huge base tables (the orders-of-
// magnitude effect of Example 1.1), not to be a precise optimizer.
package cost

import (
	"strings"

	"aggview/internal/ir"
)

// Default selectivities.
const (
	selEqCol   = 0.05 // column = column
	selEqConst = 0.10 // column = constant
	selIneq    = 0.30 // ordering predicates
	selNeq     = 0.90 // disequalities
	groupRatio = 0.10 // output groups per joined row
)

// Stats maps source names (tables or materialized views) to their
// cardinalities. Lookups are case-insensitive.
type Stats map[string]float64

// Card returns the cardinality recorded for a source and whether one is
// known.
func (s Stats) Card(name string) (float64, bool) {
	for k, v := range s {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return 0, false
}

// Estimator estimates query costs. Views without recorded stats are
// estimated through their definitions.
type Estimator struct {
	Stats Stats
	Views *ir.Registry
}

// sourceCard estimates the cardinality of one FROM source.
func (e *Estimator) sourceCard(name string, depth int) float64 {
	if c, ok := e.Stats.Card(name); ok {
		return c
	}
	if e.Views != nil && depth < 8 {
		if v, ok := e.Views.Get(name); ok {
			return e.outputRows(v.Def, depth+1)
		}
	}
	return 1000 // unknown source: a neutral default
}

// outputRows estimates the number of result rows of a query.
func (e *Estimator) outputRows(q *ir.Query, depth int) float64 {
	rows := e.joinRows(q, depth)
	if q.IsAggregationQuery() {
		if len(q.GroupBy) == 0 {
			return 1
		}
		rows *= groupRatio
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// joinRows estimates the joined, filtered row count of FROM x WHERE.
func (e *Estimator) joinRows(q *ir.Query, depth int) float64 {
	rows := 1.0
	for _, t := range q.Tables {
		rows *= e.sourceCard(t.Source, depth)
	}
	for _, p := range q.Where {
		switch {
		case p.Op == ir.OpEq && !p.L.IsConst && !p.R.IsConst:
			rows *= selEqCol
		case p.Op == ir.OpEq:
			rows *= selEqConst
		case p.Op == ir.OpNeq:
			rows *= selNeq
		default:
			rows *= selIneq
		}
	}
	return rows
}

// Estimate returns the modeled cost of evaluating q: the scan volume of
// its sources plus the joined row volume that grouping and projection
// must process.
func (e *Estimator) Estimate(q *ir.Query) float64 {
	scan := 0.0
	for _, t := range q.Tables {
		scan += e.sourceCard(t.Source, 0)
	}
	return scan + e.joinRows(q, 0)
}
