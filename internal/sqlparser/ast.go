package sqlparser

import (
	"strconv"
	"strings"

	"aggview/internal/value"
)

// Expr is a parsed SQL expression node.
type Expr interface {
	// SQL renders the expression back to SQL text.
	SQL() string
}

// ColumnRef is a possibly-qualified column reference, e.g. Calls.Plan_Id
// or Charge.
type ColumnRef struct {
	Qualifier string // table name or range-variable alias; may be empty
	Name      string
}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Lit is a literal constant.
type Lit struct {
	Val value.Value
}

// SQL implements Expr.
func (l *Lit) SQL() string { return l.Val.String() }

// AggFunc names an SQL aggregate function.
type AggFunc string

// The aggregate functions of the paper.
const (
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggAvg   AggFunc = "AVG"
)

// AggExpr is an application of an aggregate function. Arg is nil only for
// COUNT(*), in which case Star is true.
type AggExpr struct {
	Func AggFunc
	Arg  Expr
	Star bool
}

// SQL implements Expr.
func (a *AggExpr) SQL() string {
	if a.Star {
		return string(a.Func) + "(*)"
	}
	return string(a.Func) + "(" + a.Arg.SQL() + ")"
}

// BinOp is a binary operator in a parsed expression.
type BinOp string

// Comparison and arithmetic operators, plus AND.
const (
	OpEq  BinOp = "="
	OpNeq BinOp = "<>"
	OpLt  BinOp = "<"
	OpLeq BinOp = "<="
	OpGt  BinOp = ">"
	OpGeq BinOp = ">="
	OpAnd BinOp = "AND"
	OpAdd BinOp = "+"
	OpSub BinOp = "-"
	OpMul BinOp = "*"
	OpDiv BinOp = "/"
)

// BinExpr is a binary expression.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// SQL implements Expr.
func (b *BinExpr) SQL() string {
	l, r := b.L.SQL(), b.R.SQL()
	switch b.Op {
	case OpAnd:
		return l + " AND " + r
	case OpAdd, OpSub, OpMul, OpDiv:
		// Parenthesise nested arithmetic conservatively.
		if lb, ok := b.L.(*BinExpr); ok && isArith(lb.Op) {
			l = "(" + l + ")"
		}
		if rb, ok := b.R.(*BinExpr); ok && isArith(rb.Op) {
			r = "(" + r + ")"
		}
		return l + " " + string(b.Op) + " " + r
	default:
		return l + " " + string(b.Op) + " " + r
	}
}

func isArith(op BinOp) bool {
	return op == OpAdd || op == OpSub || op == OpMul || op == OpDiv
}

// IsComparison reports whether op is one of the six comparison operators.
func IsComparison(op BinOp) bool {
	switch op {
	case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
		return true
	}
	return false
}

// SelectItem is one entry of a SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

// TableRef is one entry of a FROM list: a base table or view name with
// an optional range-variable alias, or an inline subquery
// (FROM (SELECT ...) alias).
type TableRef struct {
	Table    string
	Alias    string
	Subquery *Select // non-nil for derived tables; Table is then empty
}

// Select is a parsed single-block query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent; otherwise an AND-tree of comparisons
	GroupBy  []*ColumnRef
	Having   Expr // nil when absent
}

// SQL renders the query back to SQL text.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		if t.Subquery != nil {
			b.WriteString("(" + t.Subquery.SQL() + ")")
		} else {
			b.WriteString(t.Table)
		}
		if t.Alias != "" {
			b.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	return b.String()
}

// Conjuncts flattens an AND-tree into its list of conjunct expressions.
// A nil expression yields an empty list.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines a list of expressions into a single AND-tree; it
// returns nil for an empty list.
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &BinExpr{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Statement is a parsed script statement.
type Statement interface{ stmt() }

// CreateTable declares a base table with optional keys and FDs, e.g.
//
//	CREATE TABLE Calls(Call_Id, Cust_Id, Charge) KEY(Call_Id) FD(Cust_Id -> Charge)
type CreateTable struct {
	Name    string
	Columns []string
	Keys    [][]string
	FDs     [][2][]string // pairs (from, to)
}

func (*CreateTable) stmt() {}

// CreateView names a query whose materialization is available for
// rewriting: CREATE VIEW V1 AS SELECT ... An optional column list
// (CREATE VIEW V1(a, b) AS ...) renames the query's output columns —
// the form ViewDef.SQL emits, so server /script output and slow-query
// repros parse back verbatim.
type CreateView struct {
	Name    string
	Columns []string // optional explicit output column names
	Query   *Select
}

func (*CreateView) stmt() {}

// Insert loads literal rows into a base table:
//
//	INSERT INTO R1 VALUES (1, 2.5, 'x'), (3, -4, 'y')
//
// Only literal tuples are supported — the scripts the differential
// oracle emits (and replays) carry their data inline.
type Insert struct {
	Table string
	Rows  [][]value.Value
}

func (*Insert) stmt() {}

// SQL renders the statement back to script text. String values must not
// contain single quotes (the dialect has no escape syntax).
func (ins *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + ins.Table + " VALUES ")
	for i, row := range ins.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String()) // Value.String quotes strings
		}
		b.WriteString(")")
	}
	return b.String()
}

// Delete removes the rows of a base table matching a condition (all
// rows when Where is nil):
//
//	DELETE FROM R1 WHERE A > 3 AND B = 'x'
//
// The condition grammar is the same conjunctive comparison language as
// SELECT's WHERE, so mutation scripts round-trip through the oracle.
type Delete struct {
	Table string
	Where Expr // nil = unconditional
}

func (*Delete) stmt() {}

// SQL renders the statement back to script text.
func (d *Delete) SQL() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.SQL()
	}
	return s
}

// Assignment is one SET clause of an UPDATE: column := expression over
// the row's old values (arithmetic and literals; no aggregates).
type Assignment struct {
	Col  string
	Expr Expr
}

// Update rewrites the rows of a base table matching a condition (all
// rows when Where is nil):
//
//	UPDATE R1 SET B = B + 1, C = 'y' WHERE A = 3
type Update struct {
	Table string
	Set   []Assignment
	Where Expr // nil = unconditional
}

func (*Update) stmt() {}

// SQL renders the statement back to script text.
func (u *Update) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE " + u.Table + " SET ")
	for i, a := range u.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Col + " = " + a.Expr.SQL())
	}
	if u.Where != nil {
		b.WriteString(" WHERE " + u.Where.SQL())
	}
	return b.String()
}

// QueryStatement is a bare SELECT to be rewritten/evaluated.
type QueryStatement struct {
	Query *Select
}

func (*QueryStatement) stmt() {}

// formatNumber parses a number literal into an int or float Value.
func formatNumber(text string) (value.Value, error) {
	if strings.ContainsRune(text, '.') {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Value{}, err
		}
		return value.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Value{}, err
	}
	return value.Int(i), nil
}
