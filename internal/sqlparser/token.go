// Package sqlparser implements a lexer and recursive-descent parser for
// the SQL dialect used in the paper: single-block
// SELECT-FROM-WHERE-GROUPBY-HAVING queries with the aggregate functions
// MIN, MAX, SUM, COUNT and AVG, plus the CREATE TABLE / CREATE VIEW
// statements needed to describe a workload in one script.
package sqlparser

import "fmt"

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokSemicolon
	tokStar
	tokPlus
	tokMinus
	tokSlash
	tokEq  // =
	tokNeq // <> or !=
	tokLt  // <
	tokLeq // <=
	tokGt  // >
	tokGeq // >=
	tokKeyword
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokSemicolon:
		return "';'"
	case tokStar:
		return "'*'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokSlash:
		return "'/'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'<>'"
	case tokLt:
		return "'<'"
	case tokLeq:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGeq:
		return "'>='"
	case tokKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // identifier text, keyword (upper-cased), number or string payload
	pos  int    // byte offset in the input
	line int    // 1-based line number
}

// keywords recognised by the lexer; identifiers matching these
// (case-insensitively) become tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "GROUPBY": true, "HAVING": true,
	"AND": true, "AS": true, "MIN": true, "MAX": true, "SUM": true,
	"COUNT": true, "AVG": true, "CREATE": true, "TABLE": true,
	"VIEW": true, "KEY": true, "FD": true, "NOT": true, "OR": true,
	"TRUE": true, "FALSE": true, "BETWEEN": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "UPDATE": true, "SET": true,
}
