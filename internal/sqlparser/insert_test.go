package sqlparser

import (
	"testing"

	"aggview/internal/value"
)

func TestParseInsert(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE T(A, B, C);
		INSERT INTO T VALUES (1, 2.5, 'x'), (-3, -0.5, 'y');
		SELECT A FROM T;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("expected 3 statements, got %d", len(stmts))
	}
	ins, ok := stmts[1].(*Insert)
	if !ok {
		t.Fatalf("statement 1 is %T, want *Insert", stmts[1])
	}
	if ins.Table != "T" || len(ins.Rows) != 2 {
		t.Fatalf("bad insert: table=%s rows=%d", ins.Table, len(ins.Rows))
	}
	want := [][]value.Value{
		{value.Int(1), value.Float(2.5), value.Str("x")},
		{value.Int(-3), value.Float(-0.5), value.Str("y")},
	}
	for i, row := range want {
		for j, v := range row {
			if ins.Rows[i][j].Key() != v.Key() {
				t.Fatalf("row %d col %d = %s, want %s", i, j, ins.Rows[i][j], v)
			}
		}
	}

	// Round trip: rendering re-parses to the same rows.
	again, err := ParseScript(ins.SQL())
	if err != nil {
		t.Fatalf("re-parse %q: %v", ins.SQL(), err)
	}
	ins2 := again[0].(*Insert)
	if len(ins2.Rows) != len(ins.Rows) {
		t.Fatalf("round trip lost rows: %d vs %d", len(ins2.Rows), len(ins.Rows))
	}
}

func TestParseInsertErrors(t *testing.T) {
	bad := []string{
		"INSERT T VALUES (1)",             // missing INTO
		"INSERT INTO T (1)",               // missing VALUES
		"INSERT INTO T VALUES (1), (1,2)", // mixed widths
		"INSERT INTO T VALUES (A)",        // non-literal
		"INSERT INTO T VALUES (-'x')",     // negated string
		"INSERT INTO T VALUES ()",         // empty tuple
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q): expected error", src)
		}
	}
}
