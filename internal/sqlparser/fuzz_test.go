package sqlparser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that anything it
// accepts round-trips through its own printer. Run with
// `go test -fuzz=FuzzParse ./internal/sqlparser` for continuous
// fuzzing; plain `go test` exercises the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT A FROM R",
		"SELECT DISTINCT r.A AS x, SUM(B) FROM R r, S WHERE r.A = S.B AND B <> 'x' GROUP BY r.A HAVING SUM(B) > 1",
		"SELECT COUNT(*) FROM T WHERE A BETWEEN 1 AND 2",
		"SELECT Cnt * SUM(E) FROM (SELECT E, F FROM R) x GROUP BY Cnt",
		"SELECT A FROM R WHERE A = 1.5 AND B = -3 AND C = TRUE",
		"SELECT", "FROM", "((((", "'unterminated", "SELECT A FROM R WHERE",
		"SELECT SUM(N * B) FROM V -- comment",
		"\x00\x01", "SELECT A FROM R GROUPBY A",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := Parse(src)
		if err != nil {
			return
		}
		printed := sel.SQL()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted unparseable SQL for %q:\n%s\n%v", src, printed, err)
		}
		if got := again.SQL(); got != printed {
			t.Fatalf("round trip unstable:\n1: %s\n2: %s", printed, got)
		}
	})
}

// FuzzParseScript covers the statement-level grammar.
func FuzzParseScript(f *testing.F) {
	seeds := []string{
		"CREATE TABLE T(A, B) KEY(A); CREATE VIEW V AS SELECT A FROM T; SELECT A FROM V",
		"CREATE TABLE T(A) FD(A -> A)",
		";;;",
		"CREATE VIEW",
		strings.Repeat("SELECT A FROM T;", 5),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseScript(src) // must not panic
	})
}
