package sqlparser

import (
	"fmt"
	"strings"

	"aggview/internal/value"
)

// This file is a row-at-a-time evaluator for the scalar fragment of the
// expression grammar — column references, literals, arithmetic,
// comparisons and AND. It is what gives DELETE ... WHERE and
// UPDATE ... SET their semantics everywhere a statement must be applied
// outside the engine proper: the facade's mutation entry points and the
// oracle's script replayer both route through it, so a mutation script
// means the same thing in both places by construction.

// EvalExpr evaluates a scalar expression against a single row whose
// attribute names are cols (matched case-insensitively; qualifiers on
// column references are ignored — the mutation grammar is
// single-table). Aggregates are rejected.
func EvalExpr(e Expr, cols []string, row []value.Value) (value.Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *ColumnRef:
		for i, c := range cols {
			if strings.EqualFold(c, x.Name) {
				return row[i], nil
			}
		}
		return value.Value{}, fmt.Errorf("sqlparser: unknown column %q", x.Name)
	case *BinExpr:
		if x.Op == OpAnd || IsComparison(x.Op) {
			return value.Value{}, fmt.Errorf("sqlparser: condition %s where a scalar is required", x.SQL())
		}
		l, err := EvalExpr(x.L, cols, row)
		if err != nil {
			return value.Value{}, err
		}
		r, err := EvalExpr(x.R, cols, row)
		if err != nil {
			return value.Value{}, err
		}
		switch x.Op {
		case OpAdd:
			return value.Add(l, r)
		case OpSub:
			return value.Sub(l, r)
		case OpMul:
			return value.Mul(l, r)
		case OpDiv:
			return value.Div(l, r)
		}
		return value.Value{}, fmt.Errorf("sqlparser: unsupported operator %q", x.Op)
	case *AggExpr:
		return value.Value{}, fmt.Errorf("sqlparser: aggregate %s not allowed in a row expression", x.SQL())
	default:
		return value.Value{}, fmt.Errorf("sqlparser: unsupported expression %T", e)
	}
}

// EvalCond evaluates a condition — an AND-tree of comparisons — against
// a single row. A nil condition is true (the unconditional WHERE).
func EvalCond(e Expr, cols []string, row []value.Value) (bool, error) {
	if e == nil {
		return true, nil
	}
	b, ok := e.(*BinExpr)
	if !ok {
		return false, fmt.Errorf("sqlparser: %s is not a condition", e.SQL())
	}
	if b.Op == OpAnd {
		l, err := EvalCond(b.L, cols, row)
		if err != nil || !l {
			return false, err
		}
		return EvalCond(b.R, cols, row)
	}
	if !IsComparison(b.Op) {
		return false, fmt.Errorf("sqlparser: %s is not a condition", e.SQL())
	}
	l, err := EvalExpr(b.L, cols, row)
	if err != nil {
		return false, err
	}
	r, err := EvalExpr(b.R, cols, row)
	if err != nil {
		return false, err
	}
	// Incomparable kinds compare false (and != true), matching the
	// engine's compare — a WHERE clause must select the same rows here
	// as it does in a query.
	if !value.Comparable(l, r) {
		return b.Op == OpNeq, nil
	}
	c := value.Compare(l, r)
	switch b.Op {
	case OpEq:
		return c == 0, nil
	case OpNeq:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLeq:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGeq:
		return c >= 0, nil
	}
	return false, fmt.Errorf("sqlparser: unsupported comparison %q", b.Op)
}
