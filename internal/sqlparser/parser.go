package sqlparser

import (
	"fmt"

	"aggview/internal/value"
)

// parser is a recursive-descent parser over a pre-lexed token slice.
type parser struct {
	toks []token
	i    int
}

// Parse parses a single SELECT query.
func Parse(src string) (*Select, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.cur().kind == tokSemicolon {
		p.i++
	}
	if p.cur().kind != tokEOF {
		return nil, p.unexpected("end of query")
	}
	return sel, nil
}

// ParseScript parses a sequence of statements separated by semicolons:
// CREATE TABLE, CREATE VIEW and bare SELECT statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.cur().kind == tokSemicolon {
			p.i++
		}
		if p.cur().kind == tokEOF {
			return stmts, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		switch p.cur().kind {
		case tokSemicolon, tokEOF:
		default:
			return nil, p.unexpected("';' between statements")
		}
	}
}

func newParser(src string) (*parser, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) unexpected(want string) error {
	t := p.cur()
	got := t.kind.String()
	if t.kind == tokIdent || t.kind == tokKeyword || t.kind == tokNumber {
		got = fmt.Sprintf("%q", t.text)
	}
	return fmt.Errorf("line %d: expected %s, found %s", t.line, want, got)
}

// accept consumes the current token if it is the given keyword.
func (p *parser) accept(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

// expectKeyword consumes a required keyword.
func (p *parser) expectKeyword(kw string) error {
	if !p.accept(kw) {
		return p.unexpected("'" + kw + "'")
	}
	return nil
}

// expect consumes a required token kind and returns it.
func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.unexpected(k.String())
	}
	t := p.cur()
	p.i++
	return t, nil
}

func (p *parser) parseIdent() (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	if p.accept("CREATE") {
		switch {
		case p.accept("TABLE"):
			return p.parseCreateTable()
		case p.accept("VIEW"):
			return p.parseCreateView()
		default:
			return nil, p.unexpected("'TABLE' or 'VIEW' after CREATE")
		}
	}
	if p.accept("INSERT") {
		return p.parseInsert()
	}
	if p.accept("DELETE") {
		return p.parseDelete()
	}
	if p.accept("UPDATE") {
		return p.parseUpdate()
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &QueryStatement{Query: sel}, nil
}

// parseInsert parses INSERT INTO name VALUES (lit, ...), (...) with the
// INSERT keyword already consumed. Rows must be literal tuples of equal
// width.
func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var row []value.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.cur().kind != tokComma {
				break
			}
			p.i++
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(ins.Rows) > 0 && len(row) != len(ins.Rows[0]) {
			return nil, fmt.Errorf("line %d: INSERT rows have mixed widths (%d vs %d)",
				p.cur().line, len(row), len(ins.Rows[0]))
		}
		ins.Rows = append(ins.Rows, row)
		if p.cur().kind != tokComma {
			return ins, nil
		}
		p.i++
	}
}

// parseDelete parses DELETE FROM name [WHERE cond] with the DELETE
// keyword already consumed.
func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.accept("WHERE") {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		d.Where = cond
	}
	return d, nil
}

// parseUpdate parses UPDATE name SET col = expr, ... [WHERE cond] with
// the UPDATE keyword already consumed. Assignment right-hand sides are
// arithmetic expressions over the row's old column values.
func (p *parser) parseUpdate() (*Update, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: name}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		e, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Col: col, Expr: e})
		if p.cur().kind != tokComma {
			break
		}
		p.i++
	}
	if p.accept("WHERE") {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		u.Where = cond
	}
	return u, nil
}

// parseLiteral parses one literal constant: a number (optionally
// negated), a quoted string, or TRUE/FALSE.
func (p *parser) parseLiteral() (value.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		v, err := formatNumber(t.text)
		if err != nil {
			return value.Value{}, fmt.Errorf("line %d: bad number %q: %w", t.line, t.text, err)
		}
		return v, nil
	case t.kind == tokString:
		p.i++
		return value.Str(t.text), nil
	case t.kind == tokMinus:
		p.i++
		inner, err := p.parseLiteral()
		if err != nil {
			return value.Value{}, err
		}
		if !inner.IsNumeric() {
			return value.Value{}, fmt.Errorf("line %d: '-' applies to numbers only", t.line)
		}
		if inner.Kind() == value.KindInt {
			return value.Int(-inner.AsInt()), nil
		}
		return value.Float(-inner.AsFloat()), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.i++
		return value.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.i++
		return value.Bool(false), nil
	default:
		return value.Value{}, p.unexpected("literal value")
	}
}

func (p *parser) parseIdentList() ([]string, error) {
	var out []string
	for {
		id, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.cur().kind != tokComma {
			return out, nil
		}
		p.i++
	}
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cols, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name, Columns: cols}
	for {
		switch {
		case p.accept("KEY"):
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			key, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			ct.Keys = append(ct.Keys, key)
		case p.accept("FD"):
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			from, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokMinus); err != nil {
				return nil, p.unexpected("'->' in FD")
			}
			if _, err := p.expect(tokGt); err != nil {
				return nil, p.unexpected("'->' in FD")
			}
			to, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			ct.FDs = append(ct.FDs, [2][]string{from, to})
		default:
			return ct, nil
		}
	}
}

func (p *parser) parseCreateView() (*CreateView, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.cur().kind == tokLParen {
		p.i++
		cols, err = p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateView{Name: name, Columns: cols, Query: sel}, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	sel.Distinct = p.accept("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.cur().kind != tokComma {
			break
		}
		p.i++
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if p.cur().kind != tokComma {
			break
		}
		p.i++
	}
	if p.accept("WHERE") {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		sel.Where = cond
	}
	if p.accept("GROUPBY") || (p.accept("GROUP") && true) {
		// "GROUP" must be followed by "BY"; "GROUPBY" is accepted as one
		// word to match the paper's typography.
		if p.toks[p.i-1].text == "GROUP" {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, col)
			if p.cur().kind != tokComma {
				break
			}
			p.i++
		}
	}
	if p.accept("HAVING") {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		sel.Having = cond
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseAddExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.cur().kind == tokLParen {
		p.i++
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: sub}
		if p.accept("AS") {
			alias, err := p.parseIdent()
			if err != nil {
				return TableRef{}, err
			}
			ref.Alias = alias
		} else if p.cur().kind == tokIdent {
			ref.Alias = p.cur().text
			p.i++
		}
		if ref.Alias == "" {
			return TableRef{}, p.unexpected("alias after derived table")
		}
		return ref, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.cur().text
		p.i++
	}
	return ref, nil
}

// parseCondition parses an AND-combined conjunction of comparisons.
// Disjunction and negation are rejected with a clear message: the paper
// (and hence this implementation) covers conjunctions only.
func (p *parser) parseCondition() (Expr, error) {
	var out Expr
	for {
		cmp, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = cmp
		} else {
			out = &BinExpr{Op: OpAnd, L: out, R: cmp}
		}
		if p.cur().kind == tokKeyword && (p.cur().text == "OR" || p.cur().text == "NOT") {
			return nil, fmt.Errorf("line %d: %s is not supported: conditions must be conjunctions of comparisons", p.cur().line, p.cur().text)
		}
		if !p.accept("AND") {
			return out, nil
		}
	}
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	// BETWEEN is conjunction sugar within the paper's fragment:
	// A BETWEEN x AND y parses as A >= x AND A <= y.
	if p.accept("BETWEEN") {
		lo, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		return &BinExpr{
			Op: OpAnd,
			L:  &BinExpr{Op: OpGeq, L: l, R: lo},
			R:  &BinExpr{Op: OpLeq, L: l, R: hi},
		}, nil
	}
	var op BinOp
	switch p.cur().kind {
	case tokEq:
		op = OpEq
	case tokNeq:
		op = OpNeq
	case tokLt:
		op = OpLt
	case tokLeq:
		op = OpLeq
	case tokGt:
		op = OpGt
	case tokGeq:
		op = OpGeq
	default:
		return nil, p.unexpected("comparison operator")
	}
	p.i++
	r, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	return &BinExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseAddExpr() (Expr, error) {
	l, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.i++
		r, err := p.parseMulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMulExpr() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.cur().kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		default:
			return l, nil
		}
		p.i++
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		v, err := formatNumber(t.text)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q: %w", t.line, t.text, err)
		}
		return &Lit{Val: v}, nil
	case tokString:
		p.i++
		return &Lit{Val: value.Str(t.text)}, nil
	case tokMinus:
		p.i++
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Lit); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == value.KindInt {
				return &Lit{Val: value.Int(-lit.Val.AsInt())}, nil
			}
			return &Lit{Val: value.Float(-lit.Val.AsFloat())}, nil
		}
		return &BinExpr{Op: OpSub, L: &Lit{Val: value.Int(0)}, R: inner}, nil
	case tokLParen:
		p.i++
		e, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokKeyword:
		switch t.text {
		case "MIN", "MAX", "SUM", "COUNT", "AVG":
			return p.parseAgg(AggFunc(t.text))
		case "TRUE":
			p.i++
			return &Lit{Val: value.Bool(true)}, nil
		case "FALSE":
			p.i++
			return &Lit{Val: value.Bool(false)}, nil
		}
	case tokIdent:
		return p.parseColumnRefExpr()
	}
	return nil, p.unexpected("expression")
}

func (p *parser) parseAgg(fn AggFunc) (Expr, error) {
	p.i++ // the function keyword
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.cur().kind == tokStar {
		if fn != AggCount {
			return nil, fmt.Errorf("line %d: %s(*) is not valid SQL; only COUNT(*)", p.cur().line, fn)
		}
		p.i++
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &AggExpr{Func: fn, Star: true}, nil
	}
	arg, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &AggExpr{Func: fn, Arg: arg}, nil
}

func (p *parser) parseColumnRefExpr() (Expr, error) {
	return p.parseColumnRef()
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokDot {
		p.i++
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Qualifier: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}
