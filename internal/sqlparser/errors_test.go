package sqlparser

import (
	"strings"
	"testing"
)

// TestErrorMessageStability pins the exact text of user-facing parse
// errors: tools (and the differential oracle's shrinker) match on these
// strings, so a rewording is an API break, not a cosmetic change.
func TestErrorMessageStability(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want string
	}{
		{
			name: "unterminated string",
			sql:  "SELECT A FROM R WHERE A = 'oops",
			want: "unterminated string literal",
		},
		{
			name: "unterminated string offset",
			sql:  "SELECT A FROM R WHERE A = 'oops",
			// The offset points at the opening quote, line counting at 1.
			want: "line 1 (offset 26): unterminated string literal",
		},
		{
			name: "disjunction unsupported",
			sql:  "SELECT A FROM R WHERE A = 1 OR B = 2",
			want: "is not supported: conditions must be conjunctions of comparisons",
		},
		{
			name: "star aggregate",
			sql:  "SELECT MIN(*) FROM R",
			want: "MIN(*) is not valid SQL; only COUNT(*)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.sql)
			if err == nil {
				t.Fatalf("Parse(%q): expected error", tc.sql)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error = %q, want it to contain %q", tc.sql, err, tc.want)
			}
		})
	}
}

// TestUnterminatedStringMultiline checks the reported line number tracks
// newlines preceding the bad literal.
func TestUnterminatedStringMultiline(t *testing.T) {
	_, err := Parse("SELECT A\nFROM R\nWHERE A = 'dangling")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "unterminated string literal") {
		t.Fatalf("error = %q, want line 3 unterminated-string", err)
	}
}
