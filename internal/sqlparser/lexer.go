package sqlparser

import (
	"fmt"
	"strings"
)

// lexer turns an input string into a token stream.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errorf builds a positioned lex/parse error.
func (l *lexer) errorf(pos, line int, format string, args ...any) error {
	return fmt.Errorf("line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans and returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\n':
			l.pos++
			l.line++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line}, nil

scan:
	start, line := l.pos, l.line
	c := l.src[l.pos]
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, pos: start, line: line}
	}
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if up := strings.ToUpper(text); keywords[up] {
			return mk(tokKeyword, up), nil
		}
		return mk(tokIdent, text), nil
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		return mk(tokNumber, l.src[start:l.pos]), nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, line, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote inside a string.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return mk(tokString, b.String()), nil
			}
			if ch == '\n' {
				l.line++
			}
			b.WriteByte(ch)
			l.pos++
		}
	}
	l.pos++
	switch c {
	case ',':
		return mk(tokComma, ","), nil
	case '.':
		return mk(tokDot, "."), nil
	case '(':
		return mk(tokLParen, "("), nil
	case ')':
		return mk(tokRParen, ")"), nil
	case ';':
		return mk(tokSemicolon, ";"), nil
	case '*':
		return mk(tokStar, "*"), nil
	case '+':
		return mk(tokPlus, "+"), nil
	case '-':
		return mk(tokMinus, "-"), nil
	case '/':
		return mk(tokSlash, "/"), nil
	case '=':
		return mk(tokEq, "="), nil
	case '!':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(tokNeq, "!="), nil
		}
		return token{}, l.errorf(start, line, "unexpected character %q", "!")
	case '<':
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return mk(tokLeq, "<="), nil
			case '>':
				l.pos++
				return mk(tokNeq, "<>"), nil
			}
		}
		return mk(tokLt, "<"), nil
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return mk(tokGeq, ">="), nil
		}
		return mk(tokGt, ">"), nil
	}
	return token{}, l.errorf(start, line, "unexpected character %q", string(c))
}

// lexAll tokenises the whole input (the parser works on a token slice so
// it can look ahead freely).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
