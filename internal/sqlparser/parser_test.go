package sqlparser

import (
	"strings"
	"testing"

	"aggview/internal/value"
)

func mustParse(t *testing.T, src string) *Select {
	t.Helper()
	sel, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return sel
}

func TestParseMotivatingExample(t *testing.T) {
	// Query Q from Example 1.1 of the paper.
	q := mustParse(t, `
		SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
		FROM Calls, Calling_Plans
		WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
		GROUP BY Calling_Plans.Plan_Id, Plan_Name
		HAVING SUM(Charge) < 1000000`)
	if len(q.Items) != 3 {
		t.Fatalf("want 3 select items, got %d", len(q.Items))
	}
	if agg, ok := q.Items[2].Expr.(*AggExpr); !ok || agg.Func != AggSum {
		t.Errorf("third item should be SUM aggregate, got %T", q.Items[2].Expr)
	}
	if len(q.From) != 2 || q.From[0].Table != "Calls" {
		t.Errorf("FROM parsed wrong: %+v", q.From)
	}
	conj := Conjuncts(q.Where)
	if len(conj) != 2 {
		t.Errorf("want 2 where conjuncts, got %d", len(conj))
	}
	if len(q.GroupBy) != 2 || q.GroupBy[0].Qualifier != "Calling_Plans" {
		t.Errorf("GROUP BY parsed wrong: %+v", q.GroupBy)
	}
	hav, ok := q.Having.(*BinExpr)
	if !ok || hav.Op != OpLt {
		t.Fatalf("HAVING should be < comparison, got %#v", q.Having)
	}
}

func TestParseGroupByOneWord(t *testing.T) {
	// The paper writes GROUPBY as one token.
	q := mustParse(t, "SELECT A, COUNT(B) FROM R GROUPBY A")
	if len(q.GroupBy) != 1 || q.GroupBy[0].Name != "A" {
		t.Errorf("GROUPBY keyword not accepted: %+v", q.GroupBy)
	}
}

func TestParseDistinctAndAliases(t *testing.T) {
	q := mustParse(t, "SELECT DISTINCT r.A AS x, B FROM R r, S AS s2 WHERE r.A = s2.C")
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if q.Items[0].Alias != "x" {
		t.Error("select alias not parsed")
	}
	if q.From[0].Alias != "r" || q.From[1].Alias != "s2" {
		t.Errorf("table aliases wrong: %+v", q.From)
	}
}

func TestParseCountStarAndOperators(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*) FROM R WHERE A <> 1 AND B != 2 AND C <= 3 AND D >= 4 AND E < 5 AND F > 6")
	agg := q.Items[0].Expr.(*AggExpr)
	if !agg.Star || agg.Func != AggCount {
		t.Error("COUNT(*) not parsed")
	}
	ops := []BinOp{OpNeq, OpNeq, OpLeq, OpGeq, OpLt, OpGt}
	conj := Conjuncts(q.Where)
	if len(conj) != len(ops) {
		t.Fatalf("want %d conjuncts, got %d", len(ops), len(conj))
	}
	for i, c := range conj {
		if b := c.(*BinExpr); b.Op != ops[i] {
			t.Errorf("conjunct %d: op %s, want %s", i, b.Op, ops[i])
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT A FROM R WHERE A = 'it''s' AND B = 2.5 AND C = -7 AND D = TRUE")
	conj := Conjuncts(q.Where)
	if lit := conj[0].(*BinExpr).R.(*Lit); lit.Val.AsString() != "it's" {
		t.Errorf("string literal: %v", lit.Val)
	}
	if lit := conj[1].(*BinExpr).R.(*Lit); lit.Val.AsFloat() != 2.5 {
		t.Errorf("float literal: %v", lit.Val)
	}
	if lit := conj[2].(*BinExpr).R.(*Lit); lit.Val.AsInt() != -7 {
		t.Errorf("negative int literal: %v", lit.Val)
	}
	if lit := conj[3].(*BinExpr).R.(*Lit); !lit.Val.AsBool() {
		t.Errorf("bool literal: %v", lit.Val)
	}
}

func TestParseArithmetic(t *testing.T) {
	q := mustParse(t, "SELECT Cnt * SUM(E) FROM V GROUP BY Cnt")
	b, ok := q.Items[0].Expr.(*BinExpr)
	if !ok || b.Op != OpMul {
		t.Fatalf("want multiplication, got %#v", q.Items[0].Expr)
	}
	if _, ok := b.R.(*AggExpr); !ok {
		t.Error("right side should be aggregate")
	}
	q = mustParse(t, "SELECT SUM(N * E) FROM V")
	agg := q.Items[0].Expr.(*AggExpr)
	if inner, ok := agg.Arg.(*BinExpr); !ok || inner.Op != OpMul {
		t.Error("aggregate over product not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT A",
		"SELECT A FROM",
		"SELECT A FROM R WHERE",
		"SELECT A FROM R WHERE A",
		"SELECT A FROM R WHERE A = 1 OR B = 2",
		"SELECT A FROM R WHERE NOT A = 1",
		"SELECT MIN(*) FROM R",
		"SELECT A FROM R GROUP A",
		"SELECT A FROM R; SELECT B FROM S", // Parse wants a single query
		"SELECT A FROM R WHERE A = 'unterminated",
		"SELECT A FROM R WHERE A ! B",
		"SELECT A FROM R @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		-- telco warehouse
		CREATE TABLE Calls(Call_Id, Plan_Id, Charge) KEY(Call_Id) FD(Plan_Id -> Charge);
		CREATE VIEW V1 AS SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id;
		SELECT Plan_Id, SUM(Charge) FROM Calls GROUP BY Plan_Id;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("want 3 statements, got %d", len(stmts))
	}
	ct, ok := stmts[0].(*CreateTable)
	if !ok {
		t.Fatalf("statement 0: %T", stmts[0])
	}
	if ct.Name != "Calls" || len(ct.Columns) != 3 || len(ct.Keys) != 1 || len(ct.FDs) != 1 {
		t.Errorf("CreateTable parsed wrong: %+v", ct)
	}
	if ct.FDs[0][0][0] != "Plan_Id" || ct.FDs[0][1][0] != "Charge" {
		t.Errorf("FD parsed wrong: %+v", ct.FDs)
	}
	cv, ok := stmts[1].(*CreateView)
	if !ok || cv.Name != "V1" {
		t.Fatalf("statement 1: %#v", stmts[1])
	}
	if _, ok := stmts[2].(*QueryStatement); !ok {
		t.Fatalf("statement 2: %T", stmts[2])
	}
}

func TestParseScriptErrors(t *testing.T) {
	bad := []string{
		"CREATE X",
		"CREATE TABLE",
		"CREATE TABLE T",
		"CREATE TABLE T(A B)",
		"CREATE TABLE T(A) KEY",
		"CREATE TABLE T(A) FD(A - B)",
		"CREATE VIEW V SELECT A FROM R",
		"SELECT A FROM R SELECT B FROM S",
	}
	for _, src := range bad {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q): expected error", src)
		}
	}
}

// Round trip: parse, print, re-parse, and compare printed forms.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT A1, SUM(B1) FROM R1, R2 WHERE A1 = C1 AND B1 = 6 GROUP BY A1",
		"SELECT DISTINCT A FROM R",
		"SELECT A, E, COUNT(B) FROM R1, R2 WHERE C = F AND B = D GROUP BY A, E",
		"SELECT Plan_Id, Plan_Name, SUM(Monthly_Earnings) FROM V1 WHERE Year = 1995 GROUP BY Plan_Id, Plan_Name HAVING SUM(Monthly_Earnings) < 1000000",
		"SELECT Cnt * SUM(E) AS total FROM V v1, R GROUP BY Cnt",
		"SELECT COUNT(*) FROM R WHERE A = 'x'",
		"SELECT SUM(N * B) FROM V WHERE A <> 3.5",
	}
	for _, src := range queries {
		first := mustParse(t, src)
		printed := first.SQL()
		second := mustParse(t, printed)
		if got := second.SQL(); got != printed {
			t.Errorf("round trip diverged:\n  1: %s\n  2: %s", printed, got)
		}
	}
}

func TestConjunctsAndAll(t *testing.T) {
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
	a := &BinExpr{Op: OpEq, L: &ColumnRef{Name: "A"}, R: &Lit{Val: value.Int(1)}}
	b := &BinExpr{Op: OpEq, L: &ColumnRef{Name: "B"}, R: &Lit{Val: value.Int(2)}}
	c := &BinExpr{Op: OpEq, L: &ColumnRef{Name: "C"}, R: &Lit{Val: value.Int(3)}}
	tree := AndAll([]Expr{a, b, c})
	back := Conjuncts(tree)
	if len(back) != 3 || back[0] != a || back[2] != c {
		t.Errorf("AndAll/Conjuncts mismatch: %v", back)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	q := mustParse(t, "SELECT A -- trailing comment\nFROM R -- another\n")
	if len(q.Items) != 1 || q.From[0].Table != "R" {
		t.Error("comments not skipped")
	}
}

func TestSQLRendering(t *testing.T) {
	q := mustParse(t, "SELECT a.X, MIN(Y) FROM T a WHERE a.X > 3 GROUP BY a.X HAVING MIN(Y) = 2")
	s := q.SQL()
	for _, frag := range []string{"SELECT a.X, MIN(Y)", "FROM T a", "WHERE a.X > 3", "GROUP BY a.X", "HAVING MIN(Y) = 2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("SQL() missing %q: %s", frag, s)
		}
	}
}

func TestParenthesizedArithmeticRendering(t *testing.T) {
	q := mustParse(t, "SELECT (A + B) * C FROM R")
	s := q.SQL()
	if !strings.Contains(s, "(A + B) * C") {
		t.Errorf("nested arithmetic should re-parenthesise: %s", s)
	}
	// And the printed form must parse to the same structure.
	q2 := mustParse(t, s)
	if q2.SQL() != s {
		t.Errorf("arith round trip: %s vs %s", s, q2.SQL())
	}
}

func TestIsComparison(t *testing.T) {
	for _, op := range []BinOp{OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq} {
		if !IsComparison(op) {
			t.Errorf("%s is a comparison", op)
		}
	}
	for _, op := range []BinOp{OpAnd, OpAdd, OpMul} {
		if IsComparison(op) {
			t.Errorf("%s is not a comparison", op)
		}
	}
}

func TestParseDerivedTable(t *testing.T) {
	q := mustParse(t, "SELECT Product, SUM(Amount) FROM (SELECT Product, Amount FROM Sales WHERE Region = 1) x GROUP BY Product")
	if len(q.From) != 1 || q.From[0].Subquery == nil || q.From[0].Alias != "x" {
		t.Fatalf("derived table parsed wrong: %+v", q.From)
	}
	inner := q.From[0].Subquery
	if inner.From[0].Table != "Sales" || inner.Where == nil {
		t.Errorf("inner select wrong: %s", inner.SQL())
	}
	// Round trip.
	again := mustParse(t, q.SQL())
	if again.SQL() != q.SQL() {
		t.Errorf("derived-table round trip: %s vs %s", q.SQL(), again.SQL())
	}
}

func TestParseDerivedTableAs(t *testing.T) {
	q := mustParse(t, "SELECT A FROM (SELECT A FROM R) AS sub")
	if q.From[0].Alias != "sub" {
		t.Errorf("AS alias: %+v", q.From[0])
	}
}

func TestParseNestedDerivedTables(t *testing.T) {
	q := mustParse(t, "SELECT A FROM (SELECT A FROM (SELECT A FROM R) y) x")
	if q.From[0].Subquery.From[0].Subquery == nil {
		t.Fatal("nested derived tables should parse")
	}
}

func TestParseDerivedTableErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT A FROM (SELECT A FROM R)",     // missing alias
		"SELECT A FROM (SELECT A FROM R x",    // missing close paren
		"SELECT A FROM () x",                  // empty subquery
		"SELECT A FROM (CREATE TABLE T(A)) x", // not a select
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseBetween(t *testing.T) {
	q := mustParse(t, "SELECT A FROM R WHERE B BETWEEN 1 AND 5 AND C = 2")
	conj := Conjuncts(q.Where)
	if len(conj) != 3 {
		t.Fatalf("BETWEEN should expand to two conjuncts: %d", len(conj))
	}
	lo := conj[0].(*BinExpr)
	hi := conj[1].(*BinExpr)
	if lo.Op != OpGeq || hi.Op != OpLeq {
		t.Errorf("BETWEEN bounds: %s / %s", lo.Op, hi.Op)
	}
	// HAVING too.
	q2 := mustParse(t, "SELECT A, SUM(B) FROM R GROUP BY A HAVING SUM(B) BETWEEN 2 AND 9")
	if len(Conjuncts(q2.Having)) != 2 {
		t.Error("BETWEEN in HAVING should expand")
	}
	// Errors.
	for _, bad := range []string{
		"SELECT A FROM R WHERE B BETWEEN 1",
		"SELECT A FROM R WHERE B BETWEEN 1 5",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}
