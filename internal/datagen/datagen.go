// Package datagen generates the synthetic workloads used by the
// examples, tests and the benchmark harness: the telco data warehouse of
// Example 1.1 (with Zipf-skewed calling plans), the R1/R2 micro-schema
// of the paper's Section 3-4 examples, and an append-only transaction
// chronicle in the spirit of [JMS95].
package datagen

import (
	"fmt"
	"math/rand"

	"aggview/internal/engine"
	"aggview/internal/schema"
	"aggview/internal/value"
)

// RandomRow produces one tuple of the given width, drawing each value
// from gen (which receives the column position, so per-column
// distributions compose). It is the building block shared by the
// micro-schema fillers and the oracle's random-table generator.
func RandomRow(rng *rand.Rand, width int, gen func(rng *rand.Rand, col int) value.Value) []value.Value {
	row := make([]value.Value, width)
	for c := range row {
		row[c] = gen(rng, c)
	}
	return row
}

// RandomRelation builds a relation of n rows over the given attributes,
// with values drawn from gen.
func RandomRelation(rng *rand.Rand, attrs []string, n int, gen func(rng *rand.Rand, col int) value.Value) *engine.Relation {
	rel := engine.NewRelation(attrs...)
	for i := 0; i < n; i++ {
		rel.Add(RandomRow(rng, len(attrs), gen)...)
	}
	return rel
}

// UniformInts returns a value generator drawing integers uniformly from
// [0, domain); small domains force the value collisions that grouping
// and join workloads need.
func UniformInts(domain int) func(rng *rand.Rand, col int) value.Value {
	return func(rng *rand.Rand, _ int) value.Value {
		return value.Int(int64(rng.Intn(domain)))
	}
}

// TelcoConfig sizes the telephony warehouse.
type TelcoConfig struct {
	Plans     int
	Customers int
	Calls     int
	Years     []int // years to spread calls over; default {1994, 1995, 1996}
	ZipfS     float64
	Seed      int64
}

// withDefaults fills zero fields.
func (c TelcoConfig) withDefaults() TelcoConfig {
	if c.Plans == 0 {
		c.Plans = 10
	}
	if c.Customers == 0 {
		c.Customers = 100
	}
	if c.Calls == 0 {
		c.Calls = 10000
	}
	if len(c.Years) == 0 {
		c.Years = []int{1994, 1995, 1996}
	}
	//aggvet:floateq exact zero means "field left unset"; no computed float ever reaches this default check
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	return c
}

// TelcoCatalog returns the schema of Example 1.1, with the paper's keys.
func TelcoCatalog() *schema.Catalog {
	c := schema.NewCatalog()
	mustAdd(c, &schema.Table{
		Name:    "Customer",
		Columns: []string{"Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"},
		Keys:    [][]string{{"Cust_Id"}},
	})
	mustAdd(c, &schema.Table{
		Name:    "Calling_Plans",
		Columns: []string{"Plan_Id", "Plan_Name"},
		Keys:    [][]string{{"Plan_Id"}},
	})
	mustAdd(c, &schema.Table{
		Name:    "Calls",
		Columns: []string{"Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge"},
		Keys:    [][]string{{"Call_Id"}},
	})
	return c
}

func mustAdd(c *schema.Catalog, t *schema.Table) {
	if err := c.AddTable(t); err != nil {
		panic(err)
	}
}

// Telco populates the warehouse: Customer, Calling_Plans and Calls, with
// calls assigned to plans under a Zipf distribution (a few plans carry
// most of the traffic, as in a real tariff portfolio).
func Telco(cfg TelcoConfig) *engine.DB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDB()

	plans := engine.NewRelation("Plan_Id", "Plan_Name")
	for p := 0; p < cfg.Plans; p++ {
		plans.Add(value.Int(int64(p)), value.Str(fmt.Sprintf("plan_%02d", p)))
	}
	db.Put("Calling_Plans", plans)

	cust := engine.NewRelation("Cust_Id", "Cust_Name", "Area_Code", "Phone_Number")
	for c := 0; c < cfg.Customers; c++ {
		cust.Add(value.Int(int64(c)), value.Str(fmt.Sprintf("cust_%04d", c)),
			value.Int(int64(200+rng.Intn(800))), value.Int(int64(1000000+rng.Intn(8999999))))
	}
	db.Put("Customer", cust)

	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Plans-1))
	calls := engine.NewRelation("Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge")
	for i := 0; i < cfg.Calls; i++ {
		calls.Add(
			value.Int(int64(i)),
			value.Int(int64(rng.Intn(cfg.Customers))),
			value.Int(int64(zipf.Uint64())),
			value.Int(int64(1+rng.Intn(28))),
			value.Int(int64(1+rng.Intn(12))),
			value.Int(int64(cfg.Years[rng.Intn(len(cfg.Years))])),
			value.Int(int64(1+rng.Intn(2000))), // cents
		)
	}
	db.Put("Calls", calls)
	return db
}

// R1R2Config sizes the micro-schema databases used by the Section 3-4
// example reproductions.
type R1R2Config struct {
	R1Rows, R2Rows int
	Domain         int // value domain size; small domains force collisions
	DupRate        int // one extra duplicate per DupRate rows (0: none)
	Seed           int64
}

// R1R2Catalog returns the R1(A,B,C,D), R2(E,F) schema, optionally keyed
// on the first columns.
func R1R2Catalog(keyed bool) *schema.Catalog {
	c := schema.NewCatalog()
	r1 := &schema.Table{Name: "R1", Columns: []string{"A", "B", "C", "D"}}
	r2 := &schema.Table{Name: "R2", Columns: []string{"E", "F"}}
	if keyed {
		r1.Keys = [][]string{{"A"}}
		r2.Keys = [][]string{{"E"}}
	}
	mustAdd(c, r1)
	mustAdd(c, r2)
	return c
}

// R1R2 fills the micro-schema with uniform random small values.
func R1R2(cfg R1R2Config) *engine.DB {
	if cfg.Domain == 0 {
		cfg.Domain = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := UniformInts(cfg.Domain)
	db := engine.NewDB()
	r1 := engine.NewRelation("A", "B", "C", "D")
	for i := 0; i < cfg.R1Rows; i++ {
		row := RandomRow(rng, 4, gen)
		r1.Add(row...)
		if cfg.DupRate > 0 && rng.Intn(cfg.DupRate) == 0 {
			r1.Add(row...)
		}
	}
	db.Put("R1", r1)
	db.Put("R2", RandomRelation(rng, []string{"E", "F"}, cfg.R2Rows, gen))
	return db
}

// ChronicleConfig sizes the transaction-recording scenario: an
// append-only ledger of account transactions, summarized per account and
// per (account, day) — the chronicle model of [JMS95].
type ChronicleConfig struct {
	Accounts int
	Txns     int
	Days     int
	Seed     int64
}

// ChronicleCatalog returns the ledger schema.
func ChronicleCatalog() *schema.Catalog {
	c := schema.NewCatalog()
	mustAdd(c, &schema.Table{
		Name:    "Txns",
		Columns: []string{"Txn_Id", "Acct_Id", "Day", "Amount"},
		Keys:    [][]string{{"Txn_Id"}},
	})
	mustAdd(c, &schema.Table{
		Name:    "Accounts",
		Columns: []string{"Acct_Id", "Branch"},
		Keys:    [][]string{{"Acct_Id"}},
	})
	return c
}

// Chronicle populates the ledger.
func Chronicle(cfg ChronicleConfig) *engine.DB {
	if cfg.Accounts == 0 {
		cfg.Accounts = 50
	}
	if cfg.Days == 0 {
		cfg.Days = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDB()
	accts := engine.NewRelation("Acct_Id", "Branch")
	for a := 0; a < cfg.Accounts; a++ {
		accts.Add(value.Int(int64(a)), value.Int(int64(a%7)))
	}
	db.Put("Accounts", accts)
	txns := engine.NewRelation("Txn_Id", "Acct_Id", "Day", "Amount")
	for i := 0; i < cfg.Txns; i++ {
		txns.Add(value.Int(int64(i)), value.Int(int64(rng.Intn(cfg.Accounts))),
			value.Int(int64(1+rng.Intn(cfg.Days))), value.Int(int64(rng.Intn(10000))-2000))
	}
	db.Put("Txns", txns)
	return db
}
