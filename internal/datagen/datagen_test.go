package datagen

import (
	"testing"

	"aggview/internal/engine"
	"aggview/internal/ir"
)

func TestTelcoShape(t *testing.T) {
	db := Telco(TelcoConfig{Plans: 8, Customers: 20, Calls: 1000, Seed: 1})
	calls, ok := db.Get("Calls")
	if !ok || calls.Len() != 1000 {
		t.Fatal("Calls relation wrong")
	}
	plans, _ := db.Get("Calling_Plans")
	if plans.Len() != 8 {
		t.Fatal("Calling_Plans relation wrong")
	}
	cust, _ := db.Get("Customer")
	if cust.Len() != 20 {
		t.Fatal("Customer relation wrong")
	}
	// Every call must reference an existing plan and a valid date.
	for _, row := range calls.Tuples {
		p := row[2].AsInt()
		if p < 0 || p >= 8 {
			t.Fatalf("call references plan %d", p)
		}
		if m := row[4].AsInt(); m < 1 || m > 12 {
			t.Fatalf("bad month %d", m)
		}
		if y := row[5].AsInt(); y < 1994 || y > 1996 {
			t.Fatalf("bad year %d", y)
		}
	}
}

func TestTelcoZipfSkew(t *testing.T) {
	db := Telco(TelcoConfig{Plans: 10, Calls: 20000, Seed: 3})
	calls, _ := db.Get("Calls")
	counts := map[int64]int{}
	for _, row := range calls.Tuples {
		counts[row[2].AsInt()]++
	}
	// Zipf: the most popular plan should dominate the least popular one.
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 4*min {
		t.Errorf("expected skewed plan traffic, got max=%d min=%d", max, min)
	}
}

func TestTelcoDeterministic(t *testing.T) {
	a := Telco(TelcoConfig{Calls: 500, Seed: 42})
	b := Telco(TelcoConfig{Calls: 500, Seed: 42})
	ra, _ := a.Get("Calls")
	rb, _ := b.Get("Calls")
	if !engine.MultisetEqual(ra, rb) {
		t.Error("same seed must reproduce the same data")
	}
}

func TestTelcoCatalogMatchesData(t *testing.T) {
	cat := TelcoCatalog()
	db := Telco(TelcoConfig{Calls: 100, Seed: 1})
	for _, tab := range cat.Tables() {
		rel, ok := db.Get(tab.Name)
		if !ok {
			t.Fatalf("no relation for %s", tab.Name)
		}
		if len(rel.Attrs) != len(tab.Columns) {
			t.Fatalf("%s: catalog arity %d vs data %d", tab.Name, len(tab.Columns), len(rel.Attrs))
		}
	}
	// The catalog must type-check the motivating query.
	ir.MustBuild(`SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
		FROM Calls, Calling_Plans
		WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
		GROUP BY Calling_Plans.Plan_Id, Plan_Name`, cat)
}

func TestR1R2(t *testing.T) {
	db := R1R2(R1R2Config{R1Rows: 100, R2Rows: 50, Domain: 3, DupRate: 4, Seed: 9})
	r1, _ := db.Get("R1")
	if r1.Len() < 100 {
		t.Error("duplicates should add rows")
	}
	for _, row := range r1.Tuples {
		for _, v := range row {
			if v.AsInt() < 0 || v.AsInt() >= 3 {
				t.Fatalf("domain violation: %v", v)
			}
		}
	}
	cat := R1R2Catalog(true)
	if !cat.MustTable("R1").HasKey() {
		t.Error("keyed catalog")
	}
	if R1R2Catalog(false).MustTable("R1").HasKey() {
		t.Error("unkeyed catalog")
	}
}

func TestChronicle(t *testing.T) {
	db := Chronicle(ChronicleConfig{Accounts: 10, Txns: 500, Days: 5, Seed: 2})
	txns, _ := db.Get("Txns")
	if txns.Len() != 500 {
		t.Fatal("txn count")
	}
	accts, _ := db.Get("Accounts")
	if accts.Len() != 10 {
		t.Fatal("account count")
	}
	for _, row := range txns.Tuples {
		if d := row[2].AsInt(); d < 1 || d > 5 {
			t.Fatalf("bad day %d", d)
		}
		if a := row[1].AsInt(); a < 0 || a >= 10 {
			t.Fatalf("bad account %d", a)
		}
	}
	// Txn ids are unique (key).
	seen := map[int64]bool{}
	for _, row := range txns.Tuples {
		id := row[0].AsInt()
		if seen[id] {
			t.Fatal("duplicate txn id")
		}
		seen[id] = true
	}
	ir.MustBuild("SELECT Acct_Id, SUM(Amount) FROM Txns GROUP BY Acct_Id", ChronicleCatalog())
}
