package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindString: "STRING",
		KindBool:   "BOOL",
		Kind(9):    "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("Int accessor")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float accessor")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int AsFloat")
	}
	if Str("x").AsString() != "x" {
		t.Error("Str accessor")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool accessor")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
}

func TestCompareNumericCross(t *testing.T) {
	if !Equal(Int(1), Float(1.0)) {
		t.Error("1 should equal 1.0")
	}
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Error("1 < 1.5")
	}
	if Compare(Float(2.5), Int(2)) != 1 {
		t.Error("2.5 > 2")
	}
	// Large int64 values must compare exactly, not through float64.
	big := int64(1<<62 + 1)
	if Compare(Int(big), Int(big-1)) != 1 {
		t.Error("large int compare must be exact")
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if Compare(Str("a"), Str("b")) != -1 || Compare(Str("b"), Str("a")) != 1 || Compare(Str("a"), Str("a")) != 0 {
		t.Error("string ordering")
	}
	if Compare(Bool(false), Bool(true)) != -1 || Compare(Bool(true), Bool(true)) != 0 {
		t.Error("bool ordering")
	}
}

func TestComparable(t *testing.T) {
	if Comparable(Int(1), Str("x")) {
		t.Error("int and string are not comparable")
	}
	if !Comparable(Int(1), Float(1)) {
		t.Error("int and float are comparable")
	}
	if Equal(Int(0), Str("")) {
		t.Error("cross-kind Equal must be false")
	}
}

func TestCrossKindOrderingIsStable(t *testing.T) {
	// The ordering across incomparable kinds is arbitrary but must be a
	// strict total order for sorting.
	vals := []Value{Int(1), Float(2), Str("a"), Bool(true)}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := Compare(a, b), Compare(b, a)
			if ab != -ba {
				t.Errorf("Compare(%v,%v)=%d but Compare(%v,%v)=%d", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !Equal(got, want) || got.Kind() != want.Kind() {
			t.Fatalf("got %v (%v), want %v (%v)", got, got.Kind(), want, want.Kind())
		}
	}
	v, err := Add(Int(2), Int(3))
	check(v, err, Int(5))
	v, err = Sub(Int(2), Int(3))
	check(v, err, Int(-1))
	v, err = Mul(Int(2), Int(3))
	check(v, err, Int(6))
	v, err = Add(Int(2), Float(0.5))
	check(v, err, Float(2.5))
	v, err = Mul(Float(2), Float(3))
	check(v, err, Float(6))
	v, err = Div(Int(7), Int(2))
	check(v, err, Float(3.5))
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Add(Str("a"), Int(1)); err == nil {
		t.Error("Add on string should fail")
	}
	if _, err := Mul(Int(1), Bool(true)); err == nil {
		t.Error("Mul on bool should fail")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := Div(Str("a"), Int(1)); err == nil {
		t.Error("Div on string should fail")
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	pairs := []struct {
		a, b Value
	}{
		{Int(1), Float(1.0)},
		{Int(0), Float(0)},
		{Int(-3), Float(-3)},
	}
	for _, p := range pairs {
		if p.a.Key() != p.b.Key() {
			t.Errorf("Key mismatch for equal values %v and %v", p.a, p.b)
		}
	}
	distinct := []Value{Int(1), Int(2), Float(1.5), Str("1"), Bool(true), Bool(false), Str("")}
	seen := map[string]Value{}
	for _, v := range distinct {
		if prev, ok := seen[v.Key()]; ok {
			t.Errorf("Key collision between %v and %v", prev, v)
		}
		seen[v.Key()] = v
	}
}

func TestKeyLargeInts(t *testing.T) {
	a, b := Int(1<<60), Int(1<<60+1)
	if a.Key() == b.Key() {
		t.Error("large ints beyond 2^53 must keep distinct keys")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("hi"), "'hi'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// Property: Key equality coincides with Equal for int/float values.
func TestQuickKeyMatchesEqual(t *testing.T) {
	f := func(a, b int32, useFloatA, useFloatB bool) bool {
		va, vb := Int(int64(a)), Int(int64(b))
		if useFloatA {
			va = Float(float64(a))
		}
		if useFloatB {
			vb = Float(float64(b))
		}
		return (va.Key() == vb.Key()) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va) &&
			(Compare(va, vb) == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic on ints matches Go's int64 arithmetic.
func TestQuickIntArith(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		s, err1 := Add(Int(x), Int(y))
		d, err2 := Sub(Int(x), Int(y))
		p, err3 := Mul(Int(x), Int(y))
		return err1 == nil && err2 == nil && err3 == nil &&
			s.AsInt() == x+y && d.AsInt() == x-y && p.AsInt() == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatKeyNonInteger(t *testing.T) {
	if Float(1.5).Key() == Float(2.5).Key() {
		t.Error("distinct float keys")
	}
	if Float(math.Pi).Key() != Float(math.Pi).Key() {
		t.Error("identical floats must share a key")
	}
}
