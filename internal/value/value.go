// Package value defines the scalar values that flow through the query
// engine: 64-bit integers, double-precision floats, strings and booleans.
//
// The paper's data model is purely relational with atomic values and no
// NULLs; Value mirrors that. Integers and floats compare with each other
// numerically (as SQL does), so a view materialized with integer sums can
// be compared against float constants in a rewritten query.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the runtime type of a Value.
type Kind uint8

// The supported scalar kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a scalar database value. The zero Value is the integer 0.
type Value struct {
	kind Kind
	i    int64 // also carries the bool (0/1)
	f    float64
	s    string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNumeric reports whether the value is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsInt returns the integer payload; it panics on non-integer values.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the value as a float64, converting integers.
// It panics on non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic("value: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string payload; it panics on non-string values.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload; it panics on non-bool values.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + v.s + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Comparable reports whether two values can be ordered against each other:
// numerics compare with numerics, otherwise the kinds must match.
func Comparable(a, b Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	return a.kind == b.kind
}

// Compare orders a against b, returning -1, 0 or +1. Numeric values
// compare numerically across int/float. For values of incomparable kinds
// the ordering is by kind, which gives a stable total order for sorting
// heterogeneous columns but has no SQL meaning.
func Compare(a, b Value) int {
	if a.IsNumeric() && b.IsNumeric() {
		// Compare in the integer domain when both are ints, avoiding
		// float rounding for large int64 values.
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		switch {
		case a.kind < b.kind:
			return -1
		default:
			return 1
		}
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are equal under SQL comparison
// semantics (1 = 1.0 is true).
func Equal(a, b Value) bool {
	if !Comparable(a, b) {
		return false
	}
	return Compare(a, b) == 0
}

// Add returns a+b for numeric values. The result is an integer when both
// operands are integers, a float otherwise.
func Add(a, b Value) (Value, error) {
	return arith(a, b, '+')
}

// Sub returns a-b for numeric values.
func Sub(a, b Value) (Value, error) {
	return arith(a, b, '-')
}

// Mul returns a*b for numeric values.
func Mul(a, b Value) (Value, error) {
	return arith(a, b, '*')
}

// Div returns a/b for numeric values. Division always yields a float, as
// the only divisions the rewriter emits reconstruct AVG from SUM/COUNT.
func Div(a, b Value) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("value: cannot divide %s by %s", a.kind, b.kind)
	}
	bf := b.AsFloat()
	//aggvet:floateq division-by-zero guard: only an exactly-zero divisor is an error, near-zero must divide
	if bf == 0 {
		return Value{}, fmt.Errorf("value: division by zero")
	}
	return Float(a.AsFloat() / bf), nil
}

func arith(a, b Value, op byte) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("value: cannot apply %c to %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case '+':
			return Int(a.i + b.i), nil
		case '-':
			return Int(a.i - b.i), nil
		default:
			return Int(a.i * b.i), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	default:
		return Float(af * bf), nil
	}
}

// Key returns a string that is identical for values that are Equal and
// distinct otherwise; it is used as a hash key for grouping and joining.
// Numerics hash through float64 so 1 and 1.0 land in the same group,
// matching Equal.
func (v Value) Key() string {
	return string(v.AppendKey(nil))
}

// AppendKey appends the value's hash key (the same bytes Key returns) to
// dst and returns the extended slice. The columnar engine builds group
// and join keys through it so a reused buffer serves a whole batch
// without one string allocation per value.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindInt:
		// Integers exactly representable as float64 must collide with
		// their float counterparts. int64 values beyond 2^53 are not
		// exactly representable; format those from the integer to keep
		// distinct keys distinct.
		if v.i >= -(1<<53) && v.i <= 1<<53 {
			return strconv.AppendFloat(append(dst, 'n'), float64(v.i), 'g', -1, 64)
		}
		return strconv.AppendInt(append(dst, 'i'), v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(append(dst, 'n'), v.f, 'g', -1, 64)
	case KindString:
		return append(append(dst, 's'), v.s...)
	case KindBool:
		if v.i != 0 {
			return append(dst, 'b', 'T')
		}
		return append(dst, 'b', 'F')
	default:
		return append(dst, '?')
	}
}
