package constraints

import (
	"sort"

	"aggview/internal/ir"
	"aggview/internal/value"
)

// Implies reports whether the conjunction entails the atom. An
// unsatisfiable conjunction entails everything. Entailment is decided by
// refutation when the atom mentions terms outside the closure, and
// directly on the relation matrix otherwise.
func (cl *Closure) Implies(a Atom) bool {
	if !cl.sat {
		return true
	}
	li, okL := cl.lookup(a.L)
	ri, okR := cl.lookup(a.R)
	if okL && okR {
		return cl.impliesIdx(li, a.Op, ri)
	}
	// Refutation: conj AND NOT(a) unsatisfiable iff conj implies a.
	return !Close(append(append(Conj{}, cl.conj...), a.Negate())).Sat()
}

// lookup finds the dense matrix index of a term, if it was mentioned.
func (cl *Closure) lookup(t Term) (int, bool) {
	var n int
	if t.IsConst {
		var ok bool
		n, ok = cl.cnode[t.C.Key()]
		if !ok {
			return 0, false
		}
	} else {
		var ok bool
		n, ok = cl.varOf[t.V]
		if !ok {
			return 0, false
		}
	}
	i, ok := cl.idxCache[cl.findRead(n)]
	return i, ok
}

func (cl *Closure) impliesIdx(li int, op ir.Op, ri int) bool {
	if li == ri {
		return op == ir.OpEq || op == ir.OpLeq || op == ir.OpGeq
	}
	switch op {
	case ir.OpEq:
		return false // distinct representatives after fixpoint
	case ir.OpNeq:
		return cl.neqIdx(li, ri)
	case ir.OpLt:
		return cl.m[li][ri] == relLt
	case ir.OpLeq:
		return cl.m[li][ri] != relNone
	case ir.OpGt:
		return cl.m[ri][li] == relLt
	case ir.OpGeq:
		return cl.m[ri][li] != relNone
	default:
		return false
	}
}

// neqIdx reports a derivable disequality between two classes.
func (cl *Closure) neqIdx(li, ri int) bool {
	if cl.neq[pair(li, ri)] {
		return true
	}
	if cl.m[li][ri] == relLt || cl.m[ri][li] == relLt {
		return true
	}
	ci, okI := cl.classConst(cl.repsCache[li])
	cj, okJ := cl.classConst(cl.repsCache[ri])
	return okI && okJ && !value.Equal(ci, cj)
}

// ImpliesAll reports whether the closure entails every atom of d.
func (cl *Closure) ImpliesAll(d Conj) bool {
	for _, a := range d {
		if !cl.Implies(a) {
			return false
		}
	}
	return true
}

// Vars lists the variables mentioned in the closed conjunction, sorted.
func (cl *Closure) Vars() []Var {
	out := make([]Var, 0, len(cl.varOf))
	for v := range cl.varOf {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Atoms returns the entailed atoms between the mentioned terms — the
// paper's closure of Conds. For each variable pair the strongest order
// or equality fact is emitted; for each variable its pin or tightest
// constant bounds and disequalities. The result is sound (every atom is
// entailed) and complete for residual computation over this fragment.
func (cl *Closure) Atoms() Conj {
	if !cl.sat {
		return Conj{{Op: ir.OpLt, L: C(value.Int(0)), R: C(value.Int(0))}}
	}
	vars := cl.Vars()
	var out Conj
	// Variable-variable facts.
	for i, u := range vars {
		ui, _ := cl.lookup(V(u))
		for _, w := range vars[i+1:] {
			wi, _ := cl.lookup(V(w))
			if ui == wi {
				out = append(out, Atom{Op: ir.OpEq, L: V(u), R: V(w)})
				continue
			}
			switch {
			case cl.m[ui][wi] == relLt:
				out = append(out, Atom{Op: ir.OpLt, L: V(u), R: V(w)})
			case cl.m[ui][wi] == relLeq:
				out = append(out, Atom{Op: ir.OpLeq, L: V(u), R: V(w)})
			case cl.m[wi][ui] == relLt:
				out = append(out, Atom{Op: ir.OpGt, L: V(u), R: V(w)})
			case cl.m[wi][ui] == relLeq:
				out = append(out, Atom{Op: ir.OpGeq, L: V(u), R: V(w)})
			}
			if cl.m[ui][wi] != relLt && cl.m[wi][ui] != relLt && cl.neqIdx(ui, wi) {
				out = append(out, Atom{Op: ir.OpNeq, L: V(u), R: V(w)})
			}
		}
	}
	// Variable-constant facts.
	for _, u := range vars {
		ui, _ := cl.lookup(V(u))
		if pin, ok := cl.classConst(cl.repsCache[ui]); ok {
			out = append(out, Atom{Op: ir.OpEq, L: V(u), R: C(pin)})
			continue
		}
		lo, loStrict, hasLo := cl.bound(ui, false)
		hi, hiStrict, hasHi := cl.bound(ui, true)
		if hasLo {
			op := ir.OpGeq
			if loStrict {
				op = ir.OpGt
			}
			out = append(out, Atom{Op: op, L: V(u), R: C(lo)})
		}
		if hasHi {
			op := ir.OpLeq
			if hiStrict {
				op = ir.OpLt
			}
			out = append(out, Atom{Op: op, L: V(u), R: C(hi)})
		}
		// Disequalities against constants not already covered by strict
		// bounds.
		for _, c := range cl.constants() {
			cIdx, ok := cl.lookup(C(c))
			if !ok || cIdx == ui {
				continue
			}
			if cl.m[ui][cIdx] == relLt || cl.m[cIdx][ui] == relLt {
				continue // implied by a strict bound already emitted
			}
			if cl.neq[pair(ui, cIdx)] {
				out = append(out, Atom{Op: ir.OpNeq, L: V(u), R: C(c)})
			}
		}
	}
	return out
}

// constants lists the distinct constants mentioned, in deterministic
// order.
func (cl *Closure) constants() []value.Value {
	keys := make([]string, 0, len(cl.cnode))
	for k := range cl.cnode {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Value, 0, len(keys))
	for _, k := range keys {
		out = append(out, cl.nodes[cl.cnode[k]].c)
	}
	return out
}

// bound finds the tightest constant bound of a class: upper when hi is
// true, lower otherwise. It returns the bounding constant, whether the
// bound is strict, and whether one exists.
func (cl *Closure) bound(ui int, hi bool) (value.Value, bool, bool) {
	var best value.Value
	bestStrict, found := false, false
	for _, c := range cl.constants() {
		cIdx, ok := cl.lookup(C(c))
		if !ok {
			continue
		}
		var r rel
		if hi {
			r = cl.m[ui][cIdx]
		} else {
			r = cl.m[cIdx][ui]
		}
		if r == relNone {
			continue
		}
		strict := r == relLt
		if !found {
			best, bestStrict, found = c, strict, true
			continue
		}
		cmp := value.Compare(c, best)
		if hi {
			if cmp < 0 || (cmp == 0 && strict && !bestStrict) {
				best, bestStrict = c, strict
			}
		} else {
			if cmp > 0 || (cmp == 0 && strict && !bestStrict) {
				best, bestStrict = c, strict
			}
		}
	}
	return best, bestStrict, found
}

// Satisfiable reports whether the conjunction has a model.
func Satisfiable(c Conj) bool { return Close(c).Sat() }

// Implies reports whether conjunction c entails atom a.
func Implies(c Conj, a Atom) bool { return Close(c).Implies(a) }

// ImpliesAll reports whether c entails every atom of d.
func ImpliesAll(c, d Conj) bool { return Close(c).ImpliesAll(d) }

// Equivalent reports whether two conjunctions entail each other.
func Equivalent(c, d Conj) bool {
	return Close(c).ImpliesAll(d) && Close(d).ImpliesAll(c)
}

// Residual implements the heart of conditions C3/C3': find Conds' such
// that target is equivalent to given AND Conds', where Conds' mentions
// only variables accepted by allowed. It returns the residual and
// whether one exists. For equality-only conjunctions the construction is
// complete (Theorem 3.1); in general it is sound.
func Residual(target, given Conj, allowed func(Var) bool) (Conj, bool) {
	tc := Close(target)
	if !tc.Sat() {
		// An unsatisfiable target is equivalent to anything unsatisfiable;
		// the empty-result query can use any view. Use a trivially false
		// residual over no variables.
		falseAtom := Atom{Op: ir.OpLt, L: C(value.Int(0)), R: C(value.Int(0))}
		return Conj{falseAtom}, true
	}
	// target must entail given, or the view discards needed tuples.
	if !tc.ImpliesAll(given) {
		return nil, false
	}
	// Candidate: the projection of target's closure onto allowed vars.
	var candidate Conj
	for _, a := range tc.Atoms() {
		ok := true
		for _, t := range []Term{a.L, a.R} {
			if !t.IsConst && !allowed(t.V) {
				ok = false
			}
		}
		if ok {
			candidate = append(candidate, a)
		}
	}
	// Verify: given AND candidate must entail target.
	combined := append(append(Conj{}, given...), candidate...)
	if !ImpliesAll(combined, target) {
		return nil, false
	}
	// Minimize: drop atoms that stay implied by given and the rest.
	out := append(Conj{}, candidate...)
	for i := 0; i < len(out); {
		trial := append(Conj{}, given...)
		trial = append(trial, out[:i]...)
		trial = append(trial, out[i+1:]...)
		if Close(trial).Implies(out[i]) {
			out = append(out[:i], out[i+1:]...)
		} else {
			i++
		}
	}
	return out, true
}
