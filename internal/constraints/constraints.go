// Package constraints implements reasoning over conjunctions of built-in
// predicates of the paper's language: atoms A op B where A, B are
// variables (columns) or constants and op is one of =, <>, <, <=, >, >=.
//
// It provides the closure computation the paper relies on (footnote 2 of
// Section 3): satisfiability, entailment (Implies), equivalence, the full
// set of entailed atoms (Atoms), and the residual computation that
// conditions C3/C3' need — given Conds(Q) and sigma(Conds(V)), find
// Conds' over an allowed column set with
// Conds(Q) == sigma(Conds(V)) AND Conds'.
//
// The decision procedure treats the ordered domain as dense (standard for
// this predicate class): it combines union-find over equalities, a
// strongest-relation matrix closed transitively (Floyd-Warshall over
// {<=, <}), disequality strengthening (x<=y and x<>y give x<y), and
// equality derivation (x<=y and y<=x merge classes), iterated to a
// fixpoint. For the point-algebra fragment this propagation decides
// satisfiability, so entailment by refutation is complete.
package constraints

import (
	"fmt"
	"strings"

	"aggview/internal/ir"
	"aggview/internal/value"
)

// Var is an abstract variable; the rewriter maps column IDs to Vars.
type Var int32

// Term is a variable or a constant.
type Term struct {
	IsConst bool
	V       Var
	C       value.Value
}

// V builds a variable term.
func V(v Var) Term { return Term{V: v} }

// C builds a constant term.
func C(val value.Value) Term { return Term{IsConst: true, C: val} }

// Atom is one predicate: L op R.
type Atom struct {
	Op   ir.Op
	L, R Term
}

// NewAtom builds an atom.
func NewAtom(l Term, op ir.Op, r Term) Atom { return Atom{Op: op, L: l, R: r} }

// Negate returns the complement atom (NOT a).
func (a Atom) Negate() Atom { return Atom{Op: a.Op.Negate(), L: a.L, R: a.R} }

// String renders the atom for debugging.
func (a Atom) String() string {
	return a.L.String() + " " + a.Op.String() + " " + a.R.String()
}

// String renders the term for debugging.
func (t Term) String() string {
	if t.IsConst {
		return t.C.String()
	}
	return fmt.Sprintf("v%d", t.V)
}

// Conj is a conjunction of atoms.
type Conj []Atom

// String renders the conjunction for debugging.
func (c Conj) String() string {
	if len(c) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " AND ")
}

// rel is the strongest known order relation from one node to another.
type rel uint8

const (
	relNone rel = iota
	relLeq
	relLt
)

// Closure is the deductive closure of a conjunction.
type Closure struct {
	conj    Conj
	derived Conj // strict-order atoms derived by disequality strengthening
	sat     bool

	parent []int          // union-find over nodes
	nodes  []nodeInfo     // node metadata
	varOf  map[Var]int    // variable -> node
	cnode  map[string]int // constant key -> node

	m         [][]rel         // strongest order relation between representatives
	neq       map[[2]int]bool // disequalities between representatives
	repsCache []int           // representatives matching m's indices
	idxCache  map[int]int     // representative node -> dense index
}

type nodeInfo struct {
	isConst bool
	v       Var
	c       value.Value
}

// Close computes the closure of the conjunction. The result is always
// non-nil; Sat reports whether the conjunction is satisfiable. A
// returned Closure is finalized: queries against it (Implies, Atoms,
// Sat) never mutate it, so it is safe for concurrent readers — which is
// what lets CloseCached share closures across goroutines.
func Close(c Conj) *Closure {
	cl := &Closure{conj: c, sat: true, varOf: map[Var]int{}, cnode: map[string]int{}}
	for _, a := range c {
		cl.node(a.L)
		cl.node(a.R)
	}
	// Union explicit equalities first.
	for _, a := range c {
		if a.Op == ir.OpEq {
			if !cl.union(cl.node(a.L), cl.node(a.R)) {
				cl.sat = false
				cl.finalize()
				return cl
			}
		}
	}
	cl.fixpoint()
	cl.finalize()
	return cl
}

// finalize fully compresses the union-find so every parent pointer goes
// straight to its representative. After this, findRead never follows
// more than one hop and performs no writes, making the closure safe for
// concurrent readers.
func (cl *Closure) finalize() {
	for n := range cl.parent {
		cl.parent[n] = cl.find(n)
	}
}

// node interns a term as a node index.
func (cl *Closure) node(t Term) int {
	if t.IsConst {
		key := t.C.Key()
		if n, ok := cl.cnode[key]; ok {
			return n
		}
		n := cl.addNode(nodeInfo{isConst: true, c: t.C})
		cl.cnode[key] = n
		return n
	}
	if n, ok := cl.varOf[t.V]; ok {
		return n
	}
	n := cl.addNode(nodeInfo{v: t.V})
	cl.varOf[t.V] = n
	return n
}

func (cl *Closure) addNode(info nodeInfo) int {
	n := len(cl.nodes)
	cl.nodes = append(cl.nodes, info)
	cl.parent = append(cl.parent, n)
	return n
}

func (cl *Closure) find(n int) int {
	for cl.parent[n] != n {
		cl.parent[n] = cl.parent[cl.parent[n]]
		n = cl.parent[n]
	}
	return n
}

// findRead is find without path compression: no writes, so concurrent
// readers of a finalized closure never race.
func (cl *Closure) findRead(n int) int {
	for cl.parent[n] != n {
		n = cl.parent[n]
	}
	return n
}

// union merges two classes; it reports false when the merge is
// contradictory (two distinct constants, or incomparable constant kinds).
func (cl *Closure) union(a, b int) bool {
	ra, rb := cl.find(a), cl.find(b)
	if ra == rb {
		return true
	}
	ca, okA := cl.classConst(ra)
	cb, okB := cl.classConst(rb)
	if okA && okB && !value.Equal(ca, cb) {
		return false
	}
	// Keep a constant-bearing node as the representative.
	if okB && !okA {
		ra, rb = rb, ra
	}
	cl.parent[rb] = ra
	return true
}

// classConst returns the constant a class is pinned to, if any.
func (cl *Closure) classConst(repr int) (value.Value, bool) {
	// Representative choice keeps constants as reps (see union), so a
	// pinned class has a constant representative.
	if cl.nodes[repr].isConst {
		return cl.nodes[repr].c, true
	}
	return value.Value{}, false
}

// fixpoint iterates matrix closure, disequality strengthening and class
// merging until nothing changes.
func (cl *Closure) fixpoint() {
	limit := len(cl.nodes)*len(cl.nodes) + 4*len(cl.nodes) + 8
	for iter := 0; ; iter++ {
		if iter > limit {
			// Each productive iteration merges classes or strengthens an
			// edge; this bound can only be hit by a bug.
			panic("constraints: fixpoint did not converge")
		}
		reps, idx := cl.representatives()
		n := len(reps)
		m := make([][]rel, n)
		for i := range m {
			m[i] = make([]rel, n)
		}
		neq := map[[2]int]bool{}
		addRel := func(i, j int, r rel) {
			if r > m[i][j] {
				m[i][j] = r
			}
		}
		// Seed from the original atoms plus any derived strict orders
		// (derived atoms persist across iterations; the matrix does not).
		bad := false
		for _, a := range append(append(Conj{}, cl.conj...), cl.derived...) {
			li, ri := idx[cl.find(cl.node(a.L))], idx[cl.find(cl.node(a.R))]
			switch a.Op {
			case ir.OpEq:
				// Already unioned.
			case ir.OpNeq:
				if li == ri {
					bad = true
				}
				neq[pair(li, ri)] = true
			case ir.OpLt:
				addRel(li, ri, relLt)
			case ir.OpLeq:
				addRel(li, ri, relLeq)
			case ir.OpGt:
				addRel(ri, li, relLt)
			case ir.OpGeq:
				addRel(ri, li, relLeq)
			}
		}
		// Seed constant-constant facts and constant disequalities.
		for i := 0; i < n; i++ {
			ci, okI := cl.classConst(reps[i])
			if !okI {
				continue
			}
			for j := i + 1; j < n; j++ {
				cj, okJ := cl.classConst(reps[j])
				if !okJ {
					continue
				}
				// Distinct classes with constants are unequal constants.
				neq[pair(i, j)] = true
				if value.Comparable(ci, cj) {
					if value.Compare(ci, cj) < 0 {
						addRel(i, j, relLt)
					} else {
						addRel(j, i, relLt)
					}
				}
			}
		}
		if bad {
			cl.sat = false
			return
		}
		// Transitive closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if m[i][k] == relNone {
					continue
				}
				for j := 0; j < n; j++ {
					if m[k][j] == relNone {
						continue
					}
					r := relLeq
					if m[i][k] == relLt || m[k][j] == relLt {
						r = relLt
					}
					addRel(i, j, r)
				}
			}
		}
		// Contradictions: strict self-loop, or x<=y,y<=x with x<>y handled
		// below via strengthening then re-close.
		for i := 0; i < n; i++ {
			if m[i][i] == relLt {
				cl.sat = false
				return
			}
		}
		changed := false
		// Strengthen: x<=y and x<>y imply x<y. Derived strict orders are
		// recorded as atoms so they survive the matrix rebuild.
		for p := range neq {
			i, j := p[0], p[1]
			if m[i][j] == relLeq {
				m[i][j] = relLt
				cl.derived = append(cl.derived, Atom{Op: ir.OpLt, L: cl.termOf(reps[i]), R: cl.termOf(reps[j])})
				changed = true
			}
			if m[j][i] == relLeq {
				m[j][i] = relLt
				cl.derived = append(cl.derived, Atom{Op: ir.OpLt, L: cl.termOf(reps[j]), R: cl.termOf(reps[i])})
				changed = true
			}
		}
		// Merge: x<=y and y<=x derive x=y.
		for i := 0; i < n && cl.sat; i++ {
			for j := i + 1; j < n; j++ {
				if m[i][j] == relLeq && m[j][i] == relLeq {
					if neq[pair(i, j)] {
						cl.sat = false
						return
					}
					if !cl.union(reps[i], reps[j]) {
						cl.sat = false
						return
					}
					changed = true
				}
			}
		}
		if !changed {
			cl.m = m
			cl.neq = neq
			cl.repsCache = reps
			cl.idxCache = idx
			return
		}
	}
}

// termOf reconstructs a Term for a node, for recording derived atoms.
func (cl *Closure) termOf(node int) Term {
	info := cl.nodes[node]
	if info.isConst {
		return C(info.c)
	}
	return V(info.v)
}

func pair(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// representatives lists class representatives and a node->dense-index map.
func (cl *Closure) representatives() ([]int, map[int]int) {
	var reps []int
	idx := map[int]int{}
	for n := range cl.nodes {
		r := cl.find(n)
		if _, ok := idx[r]; !ok {
			idx[r] = len(reps)
			reps = append(reps, r)
		}
	}
	return reps, idx
}

// Sat reports whether the conjunction is satisfiable.
func (cl *Closure) Sat() bool { return cl.sat }
