package constraints

// testing/quick properties over the constraint engine's algebraic laws.

import (
	"testing"
	"testing/quick"

	"aggview/internal/ir"
	"aggview/internal/value"
)

// conjFromSeed derives a small conjunction deterministically from quick's
// generated values.
func conjFromSeed(seed uint64, nAtoms uint8) Conj {
	s := seed*2654435761 + 97
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	ops := []ir.Op{ir.OpEq, ir.OpNeq, ir.OpLt, ir.OpLeq, ir.OpGt, ir.OpGeq}
	n := int(nAtoms%6) + 1
	c := make(Conj, 0, n)
	for i := 0; i < n; i++ {
		l := V(Var(next(4)))
		var r Term
		if next(3) == 0 {
			r = C(value.Int(int64(next(4))))
		} else {
			r = V(Var(next(4)))
		}
		c = append(c, Atom{Op: ops[next(len(ops))], L: l, R: r})
	}
	return c
}

// Property: every atom of the original conjunction is implied by its
// own closure (extensivity).
func TestQuickClosureExtensive(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		c := conjFromSeed(seed, n)
		cl := Close(c)
		for _, a := range c {
			if !cl.Implies(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Implies is monotone — adding atoms never loses entailments.
func TestQuickImpliesMonotone(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		c := conjFromSeed(seed, n)
		probe := Atom{Op: ir.OpLeq, L: V(0), R: V(1)}
		if !Implies(c, probe) {
			return true // nothing to preserve
		}
		extended := append(append(Conj{}, c...), Atom{Op: ir.OpLeq, L: V(2), R: V(3)})
		return Implies(extended, probe)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equivalent is reflexive and invariant under atom
// permutation and duplication.
func TestQuickEquivalentReflexiveStable(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		c := conjFromSeed(seed, n)
		if !Equivalent(c, c) {
			return false
		}
		shuffled := append(Conj{}, c...)
		for i := len(shuffled) - 1; i > 0; i-- {
			shuffled[i], shuffled[0] = shuffled[0], shuffled[i]
		}
		doubled := append(append(Conj{}, shuffled...), c...)
		return Equivalent(c, doubled)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: closure is idempotent — closing the emitted atoms yields an
// equivalent conjunction (for satisfiable inputs).
func TestQuickClosureIdempotent(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		c := conjFromSeed(seed, n)
		cl := Close(c)
		if !cl.Sat() {
			return true
		}
		atoms := cl.Atoms()
		// c entails its closure atoms by soundness; the closure atoms
		// must entail every var-to-var and var-to-const fact of c that
		// the closure itself can state. Equivalence of c and atoms holds
		// whenever c only mentions terms the closure re-emits.
		return Close(atoms).Sat() && ImpliesAll(c, atoms)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an atom and its negation are never both implied by a
// satisfiable conjunction.
func TestQuickNoContradictoryEntailment(t *testing.T) {
	f := func(seed uint64, n uint8, op uint8, l, r uint8) bool {
		c := conjFromSeed(seed, n)
		cl := Close(c)
		if !cl.Sat() {
			return true
		}
		probe := Atom{Op: ir.Op(op % 6), L: V(Var(l % 5)), R: V(Var(r % 5))}
		return !(cl.Implies(probe) && cl.Implies(probe.Negate()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
