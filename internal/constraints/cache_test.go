package constraints

import (
	"fmt"
	"sync"
	"testing"
)

// conjN builds a distinct single-atom conjunction per n (x0 = n), so
// each n occupies its own cache slot.
func conjN(n int64) Conj { return Conj{eq(vi(0), ci(n))} }

// TestCloseCachedEvictionBoundary fills the cache to exactly its
// capacity, verifies nothing was evicted, then inserts one more entry
// and verifies FIFO displaced precisely the oldest one.
func TestCloseCachedEvictionBoundary(t *testing.T) {
	ResetCloseCache()
	defer ResetCloseCache()

	// Fill to exactly closeCacheCap distinct conjunctions.
	for n := int64(0); n < closeCacheCap; n++ {
		CloseCached(conjN(n))
	}
	hits, misses, size := CloseCacheStats()
	if size != closeCacheCap {
		t.Fatalf("size after filling to capacity = %d, want %d", size, closeCacheCap)
	}
	if hits != 0 || misses != closeCacheCap {
		t.Fatalf("counters after fill: hits=%d misses=%d, want 0/%d", hits, misses, closeCacheCap)
	}

	// At exactly capacity every entry — oldest and newest — must still
	// be resident.
	first := CloseCached(conjN(0))
	last := CloseCached(conjN(closeCacheCap - 1))
	if hits, _, _ := CloseCacheStats(); hits != 2 {
		t.Fatalf("boundary probes should both hit, hits=%d", hits)
	}

	if evs := CloseCacheSnapshot().Evictions; evs != 0 {
		t.Fatalf("evictions before overflow = %d, want 0", evs)
	}

	// One past capacity: FIFO evicts the oldest entry only.
	CloseCached(conjN(closeCacheCap))
	if _, _, size := CloseCacheStats(); size != closeCacheCap {
		t.Fatalf("size after overflow = %d, want to stay at %d", size, closeCacheCap)
	}
	if evs := CloseCacheSnapshot().Evictions; evs != 1 {
		t.Fatalf("evictions after overflow = %d, want 1", evs)
	}
	_, missesBefore, _ := CloseCacheStats()
	if got := CloseCached(conjN(0)); got == first {
		t.Fatal("oldest entry must have been evicted after overflow")
	}
	if got := CloseCached(conjN(closeCacheCap - 1)); got != last {
		t.Fatal("only the oldest entry should be evicted; newer ones must survive")
	}
	if got := CloseCached(conjN(closeCacheCap)); got == nil {
		t.Fatal("freshly inserted entry missing")
	}
	_, missesAfter, _ := CloseCacheStats()
	if delta := missesAfter - missesBefore; delta != 1 {
		t.Fatalf("exactly the evicted key should re-miss, got %d new misses", delta)
	}

	// The re-inserted conjN(0) displaced the next ring slot (conjN(1)),
	// keeping the population exactly at capacity.
	if _, _, size := CloseCacheStats(); size != closeCacheCap {
		t.Fatalf("size drifted to %d after re-insert", size)
	}
}

// TestCloseCachedSemanticsSurviveEviction checks that a closure fetched
// after its twin was evicted still behaves identically: memoization is
// an optimization, never a semantic change.
func TestCloseCachedSemanticsSurviveEviction(t *testing.T) {
	ResetCloseCache()
	defer ResetCloseCache()

	c := Conj{eq(vi(0), ci(7)), eq(vi(0), vi(1))}
	before := CloseCached(c)
	// Force eviction of c by flooding the cache with cap distinct keys.
	for n := int64(0); n < closeCacheCap; n++ {
		CloseCached(conjN(n + 1000))
	}
	after := CloseCached(c)
	if after == before {
		t.Fatal("expected a recomputed closure after flooding")
	}
	if before.Sat() != after.Sat() {
		t.Fatal("recomputed closure disagrees on satisfiability")
	}
	ab, aa := before.Atoms(), after.Atoms()
	if fmt.Sprint(ab) != fmt.Sprint(aa) {
		t.Fatalf("recomputed closure differs:\n%v\nvs\n%v", ab, aa)
	}
}

// TestCloseCachedConcurrent exercises the lock discipline under -race:
// concurrent hits, misses and evictions on overlapping key sets.
func TestCloseCachedConcurrent(t *testing.T) {
	ResetCloseCache()
	defer ResetCloseCache()

	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Overlapping ranges: every key is requested by at least
				// two goroutines, mixing hits with racing misses.
				cl := CloseCached(conjN(int64((g/2)*perG + i)))
				if cl == nil || !cl.Sat() {
					t.Errorf("g%d: bad closure for %d", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, _, size := CloseCacheStats(); size == 0 || size > closeCacheCap {
		t.Fatalf("cache size out of bounds: %d", size)
	}
}
