package constraints

// This file implements closure memoization: the rewriter's
// canonical-key computation closes the WHERE conjunction of every BFS
// candidate, and distinct branches of the search repeatedly reach
// queries with identical conjunctions. CloseCached computes each closure
// once and shares it — closures are finalized by Close, so sharing
// across concurrent candidate analyzers is safe.

import (
	"strconv"
	"sync"
)

// closeCacheCap bounds the number of memoized closures. Eviction is
// FIFO: entries beyond the bound displace the oldest, which is cheap,
// deterministic, and good enough for a BFS whose working set is the
// current frontier.
const closeCacheCap = 4096

type closeCache struct {
	mu        sync.Mutex
	m         map[string]*Closure
	order     []string // insertion ring, len == cap once full
	next      int      // ring slot to displace next
	hits      int64
	misses    int64
	evictions int64
}

var globalCloseCache = &closeCache{m: map[string]*Closure{}}

// CloseCached is Close with memoization on the conjunction's exact
// content (atom order included, so a hit returns a closure with
// identical observable behavior). It is safe for concurrent callers.
func CloseCached(c Conj) *Closure {
	key := cacheKey(c)
	g := globalCloseCache
	g.mu.Lock()
	if cl, ok := g.m[key]; ok {
		g.hits++
		g.mu.Unlock()
		return cl
	}
	g.misses++
	g.mu.Unlock()

	// Compute outside the lock: closing can be expensive and concurrent
	// misses on different keys should not serialize. A racing duplicate
	// computation of the same key is harmless (both results are
	// equivalent; the second insert wins).
	cl := Close(c)

	g.mu.Lock()
	if len(g.order) < closeCacheCap {
		g.order = append(g.order, key)
	} else {
		delete(g.m, g.order[g.next])
		g.order[g.next] = key
		g.next = (g.next + 1) % closeCacheCap
		g.evictions++
	}
	g.m[key] = cl
	g.mu.Unlock()
	return cl
}

// CloseCacheStats reports cumulative hit/miss counters and the current
// entry count, for benchmarks and diagnostics.
func CloseCacheStats() (hits, misses int64, size int) {
	s := CloseCacheSnapshot()
	return s.Hits, s.Misses, s.Size
}

// CacheStats is a point-in-time view of the closure cache's counters,
// for embedding in observability reports (DESIGN.md section 9).
type CacheStats struct {
	// Hits and Misses count CloseCached lookups since the last reset.
	Hits, Misses int64
	// Evictions counts FIFO displacements of memoized closures.
	Evictions int64
	// Size is the current number of memoized closures.
	Size int
}

// CloseCacheSnapshot returns the closure cache's cumulative counters
// and current size.
func CloseCacheSnapshot() CacheStats {
	g := globalCloseCache
	g.mu.Lock()
	defer g.mu.Unlock()
	return CacheStats{Hits: g.hits, Misses: g.misses, Evictions: g.evictions, Size: len(g.m)}
}

// ResetCloseCache empties the cache and its counters (tests and
// benchmarks that need a cold start).
func ResetCloseCache() {
	g := globalCloseCache
	g.mu.Lock()
	defer g.mu.Unlock()
	g.m = map[string]*Closure{}
	g.order = nil
	g.next = 0
	g.hits, g.misses, g.evictions = 0, 0, 0
}

// cacheKey renders a conjunction to a canonical byte string: one record
// per atom, terms tagged as variable or constant.
func cacheKey(c Conj) string {
	b := make([]byte, 0, 16*len(c))
	for _, a := range c {
		b = append(b, byte(a.Op))
		b = appendTerm(b, a.L)
		b = appendTerm(b, a.R)
		b = append(b, ';')
	}
	return string(b)
}

func appendTerm(b []byte, t Term) []byte {
	if t.IsConst {
		b = append(b, 'c')
		b = append(b, t.C.Key()...)
	} else {
		b = append(b, 'v')
		b = strconv.AppendInt(b, int64(t.V), 10)
	}
	return append(b, '|')
}
