package constraints

import (
	"math/rand"
	"testing"

	"aggview/internal/ir"
	"aggview/internal/value"
)

// atom is a test shorthand.
func atom(l Term, op ir.Op, r Term) Atom { return Atom{Op: op, L: l, R: r} }

func vi(v int) Term       { return V(Var(v)) }
func ci(n int64) Term     { return C(value.Int(n)) }
func cs(s string) Term    { return C(value.Str(s)) }
func eq(l, r Term) Atom   { return atom(l, ir.OpEq, r) }
func neqA(l, r Term) Atom { return atom(l, ir.OpNeq, r) }
func lt(l, r Term) Atom   { return atom(l, ir.OpLt, r) }
func leq(l, r Term) Atom  { return atom(l, ir.OpLeq, r) }
func gt(l, r Term) Atom   { return atom(l, ir.OpGt, r) }
func geqA(l, r Term) Atom { return atom(l, ir.OpGeq, r) }

func TestSatisfiabilityBasics(t *testing.T) {
	cases := []struct {
		name string
		c    Conj
		sat  bool
	}{
		{"empty", Conj{}, true},
		{"x=1", Conj{eq(vi(0), ci(1))}, true},
		{"x=1,x=2", Conj{eq(vi(0), ci(1)), eq(vi(0), ci(2))}, false},
		{"x=1,x=1.0", Conj{eq(vi(0), ci(1)), eq(vi(0), C(value.Float(1)))}, true},
		{"x<y,y<x", Conj{lt(vi(0), vi(1)), lt(vi(1), vi(0))}, false},
		{"x<=y,y<=x", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(0))}, true},
		{"x<=y,y<=x,x<>y", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(0)), neqA(vi(0), vi(1))}, false},
		{"x<x", Conj{lt(vi(0), vi(0))}, false},
		{"x<>x", Conj{neqA(vi(0), vi(0))}, false},
		{"x<y,y<z,z<x", Conj{lt(vi(0), vi(1)), lt(vi(1), vi(2)), lt(vi(2), vi(0))}, false},
		{"x<=y,y<=z,z<=x eq-cycle", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(2)), leq(vi(2), vi(0))}, true},
		{"cycle with neq", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(2)), leq(vi(2), vi(0)), neqA(vi(0), vi(2))}, false},
		{"x>5,x<3", Conj{gt(vi(0), ci(5)), lt(vi(0), ci(3))}, false},
		{"x>=5,x<=5", Conj{geqA(vi(0), ci(5)), leq(vi(0), ci(5))}, true},
		{"x>=5,x<=5,x<>5", Conj{geqA(vi(0), ci(5)), leq(vi(0), ci(5)), neqA(vi(0), ci(5))}, false},
		{"x='a',x='b'", Conj{eq(vi(0), cs("a")), eq(vi(0), cs("b"))}, false},
		{"x='a',y='b',x=y", Conj{eq(vi(0), cs("a")), eq(vi(1), cs("b")), eq(vi(0), vi(1))}, false},
		{"x=1,x='a'", Conj{eq(vi(0), ci(1)), eq(vi(0), cs("a"))}, false},
		{"strings ordered", Conj{eq(vi(0), cs("a")), lt(vi(0), cs("b"))}, true},
		{"strings misordered", Conj{eq(vi(0), cs("b")), lt(vi(0), cs("a"))}, false},
		{"1<2 const fact", Conj{leq(vi(0), ci(1)), geqA(vi(1), ci(2)), eq(vi(0), vi(1))}, false},
	}
	for _, tc := range cases {
		if got := Satisfiable(tc.c); got != tc.sat {
			t.Errorf("%s: Satisfiable=%v, want %v", tc.name, got, tc.sat)
		}
	}
}

func TestImpliesBasics(t *testing.T) {
	cases := []struct {
		name string
		c    Conj
		a    Atom
		want bool
	}{
		{"refl eq", Conj{}, eq(vi(0), vi(0)), true},
		{"refl leq", Conj{}, leq(vi(0), vi(0)), true},
		{"refl lt", Conj{}, lt(vi(0), vi(0)), false},
		{"eq sym", Conj{eq(vi(0), vi(1))}, eq(vi(1), vi(0)), true},
		{"eq trans", Conj{eq(vi(0), vi(1)), eq(vi(1), vi(2))}, eq(vi(0), vi(2)), true},
		{"order trans", Conj{lt(vi(0), vi(1)), leq(vi(1), vi(2))}, lt(vi(0), vi(2)), true},
		{"order not conv", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(2))}, lt(vi(0), vi(2)), false},
		{"lt implies leq", Conj{lt(vi(0), vi(1))}, leq(vi(0), vi(1)), true},
		{"lt implies neq", Conj{lt(vi(0), vi(1))}, neqA(vi(0), vi(1)), true},
		{"lt implies neq flipped", Conj{lt(vi(0), vi(1))}, neqA(vi(1), vi(0)), true},
		{"pin implies bound", Conj{eq(vi(0), ci(5))}, lt(vi(0), ci(7)), true},
		{"pin implies neq const", Conj{eq(vi(0), ci(5))}, neqA(vi(0), ci(3)), true},
		{"unseen const bound", Conj{gt(vi(0), ci(5))}, gt(vi(0), ci(3)), true},
		{"unseen const bound strict edge", Conj{geqA(vi(0), ci(5))}, gt(vi(0), ci(3)), true},
		{"unseen const equal edge", Conj{geqA(vi(0), ci(5))}, geqA(vi(0), ci(5)), true},
		{"not implied", Conj{geqA(vi(0), ci(5))}, gt(vi(0), ci(5)), false},
		{"neq via distinct pins", Conj{eq(vi(0), ci(1)), eq(vi(1), ci(2))}, neqA(vi(0), vi(1)), true},
		{"neq via incomparable pins", Conj{eq(vi(0), ci(1)), eq(vi(1), cs("a"))}, neqA(vi(0), vi(1)), true},
		{"bounds squeeze to eq", Conj{leq(vi(0), ci(5)), geqA(vi(0), ci(5))}, eq(vi(0), ci(5)), true},
		{"squeeze via var", Conj{leq(vi(0), vi(1)), leq(vi(1), vi(0))}, eq(vi(0), vi(1)), true},
		{"neq strengthens", Conj{leq(vi(0), vi(1)), neqA(vi(0), vi(1))}, lt(vi(0), vi(1)), true},
		{"unsat implies anything", Conj{lt(vi(0), vi(0))}, eq(vi(5), ci(9)), true},
		{"chain with consts", Conj{leq(vi(0), ci(3)), leq(ci(3), vi(1))}, leq(vi(0), vi(1)), true},
		{"unrelated", Conj{eq(vi(0), ci(1))}, eq(vi(1), ci(1)), false},
	}
	for _, tc := range cases {
		if got := Implies(tc.c, tc.a); got != tc.want {
			t.Errorf("%s: Implies(%s, %s)=%v, want %v", tc.name, tc.c, tc.a, got, tc.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	// Example 3.1 of the paper: (A=C & B=6 & D=6) equivalent to
	// ((A=C & B=D) & D=6).
	a, b, c, d := vi(0), vi(1), vi(2), vi(3)
	lhs := Conj{eq(a, c), eq(b, ci(6)), eq(d, ci(6))}
	rhs := Conj{eq(a, c), eq(b, d), eq(d, ci(6))}
	if !Equivalent(lhs, rhs) {
		t.Error("Example 3.1 equivalence not detected")
	}
	if Equivalent(lhs, Conj{eq(a, c)}) {
		t.Error("non-equivalent conjunctions reported equivalent")
	}
	if !Equivalent(Conj{}, Conj{leq(a, a)}) {
		t.Error("tautology equals empty")
	}
}

func TestResidualExample31(t *testing.T) {
	// Conds(Q): A1=C1 & B1=6 & D1=6; sigma(Conds(V)): A1=C1 & B1=D1.
	// The residual over {D1 and view outputs} is D1=6.
	a, b, c, d := vi(0), vi(1), vi(2), vi(3)
	target := Conj{eq(a, c), eq(b, ci(6)), eq(d, ci(6))}
	given := Conj{eq(a, c), eq(b, d)}
	// Allowed: only C and D survive the view's projection (Sel(V)={C,D}).
	allowed := func(v Var) bool { return v == 2 || v == 3 }
	res, ok := Residual(target, given, allowed)
	if !ok {
		t.Fatal("residual should exist")
	}
	// given & res must be equivalent to target.
	if !Equivalent(append(append(Conj{}, given...), res...), target) {
		t.Errorf("residual %s does not reconstruct target", res)
	}
	for _, at := range res {
		for _, tm := range []Term{at.L, at.R} {
			if !tm.IsConst && !allowed(tm.V) {
				t.Errorf("residual uses disallowed variable: %s", at)
			}
		}
	}
}

func TestResidualFailsWhenViewTooStrict(t *testing.T) {
	// View enforces B=7 but query needs B=6: no residual.
	b := vi(1)
	target := Conj{eq(b, ci(6))}
	given := Conj{eq(b, ci(7))}
	if _, ok := Residual(target, given, func(Var) bool { return true }); ok {
		t.Error("residual should not exist when the view filters needed tuples")
	}
}

func TestResidualFailsWhenColumnProjectedOut(t *testing.T) {
	// Query constrains B, the view projects B out and does not enforce it.
	b := vi(1)
	target := Conj{eq(b, ci(6))}
	given := Conj{}
	if _, ok := Residual(target, given, func(v Var) bool { return v != 1 }); ok {
		t.Error("residual over allowed vars cannot express B=6")
	}
}

func TestResidualEqualityChainThroughView(t *testing.T) {
	// Query: A=B & B=5. View enforces A=B and exports A only.
	// Residual must express B=5 as A=5 via the equality.
	a, b := vi(0), vi(1)
	target := Conj{eq(a, b), eq(b, ci(5))}
	given := Conj{eq(a, b)}
	res, ok := Residual(target, given, func(v Var) bool { return v == 0 })
	if !ok {
		t.Fatal("residual should exist via A=5")
	}
	if !Equivalent(append(append(Conj{}, given...), res...), target) {
		t.Errorf("residual %s wrong", res)
	}
}

func TestResidualUnsatTarget(t *testing.T) {
	target := Conj{lt(vi(0), vi(0))}
	res, ok := Residual(target, Conj{}, func(Var) bool { return false })
	if !ok {
		t.Fatal("unsat target should admit a trivially false residual")
	}
	if Satisfiable(append(Conj{}, res...)) {
		t.Error("residual for unsat target should be unsatisfiable")
	}
}

func TestResidualMinimization(t *testing.T) {
	// target: A=B & B=C. given: A=B. residual should be a single atom.
	a, b, c := vi(0), vi(1), vi(2)
	target := Conj{eq(a, b), eq(b, c)}
	res, ok := Residual(target, Conj{eq(a, b)}, func(Var) bool { return true })
	if !ok {
		t.Fatal("residual should exist")
	}
	if len(res) != 1 {
		t.Errorf("residual not minimized: %s", res)
	}
}

func TestAtomsSoundness(t *testing.T) {
	c := Conj{eq(vi(0), vi(1)), lt(vi(1), vi(2)), leq(vi(2), ci(10)), neqA(vi(0), ci(0))}
	cl := Close(c)
	if !cl.Sat() {
		t.Fatal("should be satisfiable")
	}
	for _, a := range cl.Atoms() {
		if !Implies(c, a) {
			t.Errorf("Atoms() emitted non-entailed atom %s", a)
		}
	}
}

func TestAtomsOfUnsat(t *testing.T) {
	cl := Close(Conj{lt(vi(0), vi(0))})
	atoms := cl.Atoms()
	if Satisfiable(atoms) {
		t.Error("Atoms of an unsat closure should be unsatisfiable")
	}
}

func TestVarsSorted(t *testing.T) {
	cl := Close(Conj{eq(vi(5), vi(1)), lt(vi(3), ci(0))})
	vars := cl.Vars()
	want := []Var{1, 3, 5}
	if len(vars) != 3 {
		t.Fatalf("Vars: %v", vars)
	}
	for i, w := range want {
		if vars[i] != w {
			t.Errorf("Vars[%d] = %d, want %d", i, vars[i], w)
		}
	}
}

func TestStringRendering(t *testing.T) {
	c := Conj{eq(vi(0), ci(1))}
	if got := c.String(); got != "v0 = 1" {
		t.Errorf("Conj.String() = %q", got)
	}
	if got := (Conj{}).String(); got != "TRUE" {
		t.Errorf("empty Conj.String() = %q", got)
	}
}

// ---- randomized soundness / completeness probes ----

// randomConj builds a random conjunction over nVars variables with small
// integer constants.
func randomConj(r *rand.Rand, nVars, nAtoms int) Conj {
	term := func() Term {
		if r.Intn(3) == 0 {
			return ci(int64(r.Intn(5)))
		}
		return vi(r.Intn(nVars))
	}
	ops := []ir.Op{ir.OpEq, ir.OpNeq, ir.OpLt, ir.OpLeq, ir.OpGt, ir.OpGeq}
	c := make(Conj, nAtoms)
	for i := range c {
		c[i] = Atom{Op: ops[r.Intn(len(ops))], L: term(), R: term()}
	}
	return c
}

// evalAtom evaluates an atom under an assignment (floats).
func evalAtom(a Atom, asg map[Var]float64) bool {
	val := func(t Term) float64 {
		if t.IsConst {
			return t.C.AsFloat()
		}
		return asg[t.V]
	}
	l, r := val(a.L), val(a.R)
	switch a.Op {
	case ir.OpEq:
		return l == r
	case ir.OpNeq:
		return l != r
	case ir.OpLt:
		return l < r
	case ir.OpLeq:
		return l <= r
	case ir.OpGt:
		return l > r
	case ir.OpGeq:
		return l >= r
	}
	return false
}

// TestRandomSoundness: any assignment satisfying a conjunction must
// satisfy every atom the closure claims is implied.
func TestRandomSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const nVars = 4
	for trial := 0; trial < 400; trial++ {
		c := randomConj(r, nVars, 1+r.Intn(4))
		cl := Close(c)
		// Random assignments over a small grid (including halves so strict
		// inequalities can be separated).
		for probe := 0; probe < 200; probe++ {
			asg := map[Var]float64{}
			for v := 0; v < nVars; v++ {
				asg[Var(v)] = float64(r.Intn(11)) / 2.0
			}
			holds := true
			for _, a := range c {
				if !evalAtom(a, asg) {
					holds = false
					break
				}
			}
			if !holds {
				continue
			}
			// The conjunction has a model, so it must be satisfiable.
			if !cl.Sat() {
				t.Fatalf("conjunction %s has model %v but closure says unsat", c, asg)
			}
			// Every implied atom must hold in the model.
			for _, a := range cl.Atoms() {
				if !evalAtom(a, asg) {
					t.Fatalf("closure of %s claims %s but model %v violates it", c, a, asg)
				}
			}
		}
	}
}

// TestRandomImpliesSound: Implies(c, a) means every model of c satisfies a.
func TestRandomImpliesSound(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const nVars = 3
	for trial := 0; trial < 400; trial++ {
		c := randomConj(r, nVars, 1+r.Intn(3))
		probeAtoms := randomConj(r, nVars, 3)
		cl := Close(c)
		for _, a := range probeAtoms {
			if !cl.Implies(a) {
				continue
			}
			for probe := 0; probe < 150; probe++ {
				asg := map[Var]float64{}
				for v := 0; v < nVars; v++ {
					asg[Var(v)] = float64(r.Intn(9)) / 2.0
				}
				holds := true
				for _, at := range c {
					if !evalAtom(at, asg) {
						holds = false
						break
					}
				}
				if holds && !evalAtom(a, asg) {
					t.Fatalf("Implies(%s, %s) but model %v is a counterexample", c, a, asg)
				}
			}
		}
	}
}

// TestRandomResidualSound: whenever a residual is found, given AND
// residual must be equivalent to target.
func TestRandomResidualSound(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const nVars = 4
	for trial := 0; trial < 300; trial++ {
		target := randomConj(r, nVars, 1+r.Intn(4))
		if !Satisfiable(target) {
			continue
		}
		// given: a random subset of target's atoms.
		var given Conj
		for _, a := range target {
			if r.Intn(2) == 0 {
				given = append(given, a)
			}
		}
		allowedSet := map[Var]bool{}
		for v := 0; v < nVars; v++ {
			if r.Intn(2) == 0 {
				allowedSet[Var(v)] = true
			}
		}
		res, ok := Residual(target, given, func(v Var) bool { return allowedSet[v] })
		if !ok {
			continue
		}
		combined := append(append(Conj{}, given...), res...)
		if !Equivalent(combined, target) {
			t.Fatalf("residual unsound:\n target=%s\n given=%s\n res=%s", target, given, res)
		}
		for _, a := range res {
			for _, tm := range []Term{a.L, a.R} {
				if !tm.IsConst && !allowedSet[tm.V] {
					t.Fatalf("residual %s uses disallowed var", res)
				}
			}
		}
	}
}
