package unnest

import (
	"math/rand"
	"testing"

	"aggview/internal/engine"
	"aggview/internal/ir"
	"aggview/internal/value"
)

func src() ir.MapSource {
	return ir.MapSource{"R1": {"A", "B", "C", "D"}, "R2": {"E", "F"}}
}

func regWith(t *testing.T, defs map[string]string) (*ir.Registry, ir.SchemaSource) {
	t.Helper()
	reg := ir.NewRegistry()
	full := ir.MultiSource{src(), reg}
	// Register in sorted order for determinism.
	names := make([]string, 0, len(defs))
	for n := range defs {
		names = append(names, n)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		v, err := ir.NewViewDef(n, ir.MustBuild(defs[n], full))
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return reg, full
}

func randDB(seed int64) *engine.DB {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDB()
	r1 := engine.NewRelation("A", "B", "C", "D")
	for i := 0; i < 40; i++ {
		row := []value.Value{
			value.Int(int64(rng.Intn(4))), value.Int(int64(rng.Intn(4))),
			value.Int(int64(rng.Intn(4))), value.Int(int64(rng.Intn(4))),
		}
		r1.Add(row...)
		if rng.Intn(4) == 0 {
			r1.Add(row...)
		}
	}
	db.Put("R1", r1)
	r2 := engine.NewRelation("E", "F")
	for i := 0; i < 15; i++ {
		r2.Add(value.Int(int64(rng.Intn(4))), value.Int(int64(rng.Intn(4))))
	}
	db.Put("R2", r2)
	return db
}

// checkEquivalent runs the original (with view expansion) and the
// flattened query (base tables only) and compares multisets.
func checkEquivalent(t *testing.T, q, flat *ir.Query, reg *ir.Registry) {
	t.Helper()
	for seed := int64(0); seed < 5; seed++ {
		db := randDB(seed)
		want, err := engine.NewEvaluator(db, reg).Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.NewEvaluator(db, nil).Exec(flat)
		if err != nil {
			t.Fatalf("flattened query needs no views: %v\n%s", err, flat.SQL())
		}
		if !engine.MultisetEqual(want, got) {
			t.Fatalf("flatten changed semantics\noriginal: %s\nflattened: %s", q.SQL(), flat.SQL())
		}
	}
}

func TestFlattenConjunctiveView(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Sliced": "SELECT A, B, D FROM R1 WHERE C = 2",
	})
	q := ir.MustBuild("SELECT A, SUM(B) FROM Sliced WHERE D > 0 GROUP BY A", full)
	flat, changed := Flatten(q, reg, nil)
	if !changed {
		t.Fatal("conjunctive view should flatten")
	}
	if len(ViewNames(flat, reg)) != 0 {
		t.Fatalf("views remain: %s", flat.SQL())
	}
	checkEquivalent(t, q, flat, reg)
}

func TestFlattenJoinViewWithOuterJoinPredicate(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"J": "SELECT A, E FROM R1, R2 WHERE B = F",
	})
	q := ir.MustBuild("SELECT A, COUNT(E) FROM J WHERE A = E GROUP BY A", full)
	flat, changed := Flatten(q, reg, nil)
	if !changed {
		t.Fatal("join view should flatten")
	}
	if len(flat.Tables) != 2 {
		t.Fatalf("expected R1, R2 after flattening: %s", flat.SQL())
	}
	checkEquivalent(t, q, flat, reg)
}

func TestFlattenNestedViews(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Inner": "SELECT A, B, C, D FROM R1 WHERE D = 1",
		"Outer": "SELECT A, B FROM Inner WHERE C = 2",
	})
	q := ir.MustBuild("SELECT A, COUNT(B) FROM Outer GROUP BY A", full)
	flat, changed := Flatten(q, reg, nil)
	if !changed {
		t.Fatal("nested views should flatten")
	}
	if len(ViewNames(flat, reg)) != 0 {
		t.Fatalf("nested flattening incomplete: %s", flat.SQL())
	}
	if len(flat.Where) != 2 {
		t.Fatalf("both slice predicates should survive: %s", flat.SQL())
	}
	checkEquivalent(t, q, flat, reg)
}

func TestAggregationViewNotFlattened(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Agg": "SELECT A, SUM(B) FROM R1 GROUP BY A",
	})
	q := ir.MustBuild("SELECT A, sum_B FROM Agg", full)
	flat, changed := Flatten(q, reg, nil)
	if changed {
		t.Fatalf("aggregation views are genuine blocks: %s", flat.SQL())
	}
}

func TestDistinctViewNotFlattened(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Dst": "SELECT DISTINCT A, B FROM R1",
	})
	q := ir.MustBuild("SELECT A FROM Dst", full)
	if _, changed := Flatten(q, reg, nil); changed {
		t.Fatal("DISTINCT views change multiplicities and must not flatten")
	}
}

func TestKeepPinsViews(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Sliced": "SELECT A, B, D FROM R1 WHERE C = 2",
	})
	q := ir.MustBuild("SELECT A FROM Sliced", full)
	_, changed := Flatten(q, reg, func(name string) bool { return name == "Sliced" })
	if changed {
		t.Fatal("keep must pin the view")
	}
}

func TestFlattenPreservesSelfJoinOfView(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Sliced": "SELECT A, B, C, D FROM R1 WHERE D = 1",
	})
	q := ir.MustBuild("SELECT x.A FROM Sliced x, Sliced y WHERE x.B = y.C", full)
	flat, changed := Flatten(q, reg, nil)
	if !changed || len(flat.Tables) != 2 {
		t.Fatalf("both occurrences should flatten to R1 copies: %s", flat.SQL())
	}
	checkEquivalent(t, q, flat, reg)
}

func TestFlattenMixedBaseAndView(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Sliced": "SELECT A, B FROM R1 WHERE C = 1",
	})
	q := ir.MustBuild("SELECT Sliced.A, MAX(F) FROM Sliced, R2 WHERE B = E GROUP BY Sliced.A HAVING MAX(F) > 0", full)
	flat, changed := Flatten(q, reg, nil)
	if !changed {
		t.Fatal("should flatten")
	}
	checkEquivalent(t, q, flat, reg)
}

func TestViewNames(t *testing.T) {
	reg, full := regWith(t, map[string]string{
		"Agg": "SELECT A, SUM(B) FROM R1 GROUP BY A",
	})
	q := ir.MustBuild("SELECT x.A FROM Agg x, Agg y, R2 WHERE x.A = y.A", full)
	names := ViewNames(q, reg)
	if len(names) != 1 || names[0] != "Agg" {
		t.Fatalf("ViewNames: %v", names)
	}
}
