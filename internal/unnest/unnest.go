// Package unnest merges view references in a query's FROM clause into a
// single block, implementing the transformation the paper's conclusion
// leans on: "multi-block SQL queries (e.g., queries with view tables in
// the FROM clause) can often be transformed to single-block queries
// [YL94, CS94, GHQ95]. In such cases, our techniques can also be
// applied."
//
// A reference to a conjunctive view (no grouping, aggregation, HAVING or
// DISTINCT) is always mergeable: its tables and conditions splice into
// the outer block and its output columns resolve to the inner columns.
// This holds under multiset semantics because the view contributes
// exactly the multiset of its defining join. References to aggregation
// or DISTINCT views are left in place — under bag semantics they are
// genuine subquery blocks.
//
// Flattening enables physical data independence (the paper's [TSI94]
// motivation): applications query logical views; Flatten reduces those
// queries to base tables; the rewriter then routes them to whatever
// materializations exist.
package unnest

import (
	"strings"

	"aggview/internal/ir"
)

// Flatten merges every mergeable view reference of q, recursively. The
// keep predicate (optional) pins view names that must NOT be flattened —
// typically views that are materialized and therefore cheaper as data
// sources. It returns the flattened query and whether anything changed.
func Flatten(q *ir.Query, views *ir.Registry, keep func(string) bool) (*ir.Query, bool) {
	if views == nil {
		return q, false
	}
	changed := false
	for {
		next, ok := flattenOnce(q, views, keep)
		if !ok {
			return q, changed
		}
		q = next
		changed = true
	}
}

// flattenOnce merges the first mergeable view occurrence; it reports
// false when none exists.
func flattenOnce(q *ir.Query, views *ir.Registry, keep func(string) bool) (*ir.Query, bool) {
	target := -1
	var def *ir.Query
	for ti, t := range q.Tables {
		v, isView := views.Get(t.Source)
		if !isView {
			continue
		}
		if keep != nil && keep(v.Name) {
			continue
		}
		if !mergeable(v.Def) {
			continue
		}
		if !allBareOutputs(v.Def) {
			continue
		}
		target, def = ti, v.Def
		break
	}
	if target < 0 {
		return nil, false
	}

	n := &ir.Query{Distinct: q.Distinct}
	oldToNew := make([]ir.ColID, q.NumCols())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for ti, t := range q.Tables {
		if ti == target {
			// Splice the view definition's tables.
			defToNew := make([]ir.ColID, def.NumCols())
			for _, dt := range def.Tables {
				attrs := make([]string, len(dt.Cols))
				for pos, id := range dt.Cols {
					attrs[pos] = def.Col(id).Attr
				}
				nt := n.AddTable(dt.Source, "", attrs)
				for pos, id := range dt.Cols {
					defToNew[id] = n.Tables[nt].Cols[pos]
				}
			}
			for _, p := range def.Where {
				n.Where = append(n.Where, ir.MapPredCols(p, func(c ir.ColID) ir.ColID { return defToNew[c] }))
			}
			for pos, it := range def.Select {
				cr := it.Expr.(*ir.ColRef) // guaranteed by allBareOutputs
				oldToNew[t.Cols[pos]] = defToNew[cr.Col]
			}
			continue
		}
		attrs := make([]string, len(t.Cols))
		for pos, id := range t.Cols {
			attrs[pos] = q.Col(id).Attr
		}
		nt := n.AddTable(t.Source, t.Alias, attrs)
		for pos, id := range t.Cols {
			oldToNew[id] = n.Tables[nt].Cols[pos]
		}
	}

	remap := func(c ir.ColID) ir.ColID { return oldToNew[c] }
	for _, p := range q.Where {
		n.Where = append(n.Where, ir.MapPredCols(p, remap))
	}
	for _, it := range q.Select {
		n.Select = append(n.Select, ir.SelectItem{Expr: ir.MapExprCols(it.Expr, remap), Alias: it.Alias})
	}
	for _, g := range q.GroupBy {
		n.GroupBy = append(n.GroupBy, remap(g))
	}
	for _, h := range q.Having {
		n.Having = append(n.Having, ir.HPred{Op: h.Op, L: ir.MapExprCols(h.L, remap), R: ir.MapExprCols(h.R, remap)})
	}
	return n, true
}

// mergeable reports whether a view definition can splice into an outer
// block under multiset semantics.
func mergeable(def *ir.Query) bool {
	return !def.Distinct && !def.IsAggregationQuery()
}

// allBareOutputs reports whether every view output is a plain column
// (constants or expressions would need projection rewriting; the SQL
// subset here never produces them in conjunctive views, but a defensive
// check keeps Flatten total).
func allBareOutputs(def *ir.Query) bool {
	for _, it := range def.Select {
		if _, ok := it.Expr.(*ir.ColRef); !ok {
			return false
		}
	}
	return true
}

// ViewNames lists the distinct view sources still referenced by q.
func ViewNames(q *ir.Query, views *ir.Registry) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range q.Tables {
		if _, isView := views.Get(t.Source); isView {
			key := strings.ToLower(t.Source)
			if !seen[key] {
				seen[key] = true
				out = append(out, t.Source)
			}
		}
	}
	return out
}
