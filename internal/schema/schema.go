// Package schema holds the database catalog: table definitions, keys and
// functional dependencies. The rewriter consults the catalog both to
// resolve column references during parsing and to infer set-ness of query
// results (Section 5 of the paper).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Table describes a base table: an ordered list of column names, plus
// optional meta-information (keys, functional dependencies).
type Table struct {
	Name    string
	Columns []string
	// Keys lists candidate keys; each key is a set of column names. A
	// table with at least one key is guaranteed to be a set (no duplicate
	// rows).
	Keys [][]string
	// FDs lists functional dependencies beyond the keys.
	FDs []FD
}

// FD is a functional dependency From -> To over the columns of one table.
type FD struct {
	From []string
	To   []string
}

// Catalog is a collection of table definitions, looked up by name
// case-insensitively (SQL identifiers are case-insensitive here).
type Catalog struct {
	tables map[string]*Table
	order  []string // insertion order, for deterministic listings
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// canon maps an identifier to its canonical (lower-case) form.
func canon(name string) string { return strings.ToLower(name) }

// AddTable registers a table definition. It fails on duplicate table
// names, duplicate column names, and keys or FDs that mention unknown
// columns.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	key := canon(t.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("schema: duplicate table %q", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %q has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		cc := canon(col)
		if seen[cc] {
			return fmt.Errorf("schema: table %q has duplicate column %q", t.Name, col)
		}
		seen[cc] = true
	}
	for _, k := range t.Keys {
		if len(k) == 0 {
			return fmt.Errorf("schema: table %q has an empty key", t.Name)
		}
		for _, col := range k {
			if !seen[canon(col)] {
				return fmt.Errorf("schema: table %q key mentions unknown column %q", t.Name, col)
			}
		}
	}
	for _, fd := range t.FDs {
		if len(fd.From) == 0 || len(fd.To) == 0 {
			return fmt.Errorf("schema: table %q has a degenerate FD", t.Name)
		}
		for _, col := range append(append([]string{}, fd.From...), fd.To...) {
			if !seen[canon(col)] {
				return fmt.Errorf("schema: table %q FD mentions unknown column %q", t.Name, col)
			}
		}
	}
	c.tables[key] = t
	c.order = append(c.order, key)
	return nil
}

// ColumnsOf returns the ordered column names of a table; it makes
// Catalog usable wherever a schema source is needed (ir.SchemaSource).
func (c *Catalog) ColumnsOf(name string) ([]string, bool) {
	t, ok := c.Table(name)
	if !ok {
		return nil, false
	}
	return t.Columns, true
}

// Table looks up a table by name; the second result reports success.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[canon(name)]
	return t, ok
}

// MustTable looks up a table and panics when it is absent. It is a
// convenience for tests and generated workloads.
func (c *Catalog) MustTable(name string) *Table {
	t, ok := c.Table(name)
	if !ok {
		panic(fmt.Sprintf("schema: no table %q", name))
	}
	return t
}

// Tables returns the table definitions in registration order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.tables[k])
	}
	return out
}

// ColumnIndex returns the position of column col in table t, or -1.
// Matching is case-insensitive.
func (t *Table) ColumnIndex(col string) int {
	cc := canon(col)
	for i, c := range t.Columns {
		if canon(c) == cc {
			return i
		}
	}
	return -1
}

// HasKey reports whether the table declares at least one candidate key,
// which guarantees its extension is a set.
func (t *Table) HasKey() bool { return len(t.Keys) > 0 }

// AllFDs returns the table's functional dependencies, including one FD
// per declared key (key -> all columns).
func (t *Table) AllFDs() []FD {
	out := make([]FD, 0, len(t.FDs)+len(t.Keys))
	out = append(out, t.FDs...)
	for _, k := range t.Keys {
		out = append(out, FD{From: append([]string{}, k...), To: append([]string{}, t.Columns...)})
	}
	return out
}

// IsKey reports whether the given column set functionally determines all
// of the table's columns, i.e. contains a candidate key (directly or via
// FD closure).
func (t *Table) IsKey(cols []string) bool {
	closure := t.FDClosure(cols)
	for _, c := range t.Columns {
		if !closure[canon(c)] {
			return false
		}
	}
	return true
}

// FDClosure computes the attribute closure of cols under the table's
// functional dependencies (including key FDs). The result maps canonical
// column names to true.
func (t *Table) FDClosure(cols []string) map[string]bool {
	closure := make(map[string]bool, len(cols))
	for _, c := range cols {
		closure[canon(c)] = true
	}
	fds := t.AllFDs()
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			all := true
			for _, f := range fd.From {
				if !closure[canon(f)] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, to := range fd.To {
				if !closure[canon(to)] {
					closure[canon(to)] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// String renders the catalog as CREATE TABLE-style declarations, sorted
// by table name, for debugging and golden tests.
func (c *Catalog) String() string {
	names := make([]string, 0, len(c.tables))
	for k := range c.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := c.tables[n]
		fmt.Fprintf(&b, "TABLE %s(%s)", t.Name, strings.Join(t.Columns, ", "))
		for _, k := range t.Keys {
			fmt.Fprintf(&b, " KEY(%s)", strings.Join(k, ", "))
		}
		for _, fd := range t.FDs {
			fmt.Fprintf(&b, " FD(%s -> %s)", strings.Join(fd.From, ", "), strings.Join(fd.To, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
