package schema

import (
	"strings"
	"testing"
)

func telco(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.AddTable(&Table{
		Name:    "Customer",
		Columns: []string{"Cust_Id", "Cust_Name", "Area_Code", "Phone_Number"},
		Keys:    [][]string{{"Cust_Id"}},
	}))
	must(c.AddTable(&Table{
		Name:    "Calling_Plans",
		Columns: []string{"Plan_Id", "Plan_Name"},
		Keys:    [][]string{{"Plan_Id"}},
	}))
	must(c.AddTable(&Table{
		Name:    "Calls",
		Columns: []string{"Call_Id", "Cust_Id", "Plan_Id", "Day", "Month", "Year", "Charge"},
		Keys:    [][]string{{"Call_Id"}},
	}))
	return c
}

func TestLookupCaseInsensitive(t *testing.T) {
	c := telco(t)
	if _, ok := c.Table("calls"); !ok {
		t.Error("lower-case lookup failed")
	}
	if _, ok := c.Table("CALLS"); !ok {
		t.Error("upper-case lookup failed")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("unknown table should not resolve")
	}
}

func TestMustTablePanics(t *testing.T) {
	c := telco(t)
	defer func() {
		if recover() == nil {
			t.Error("MustTable on unknown table should panic")
		}
	}()
	c.MustTable("nope")
}

func TestAddTableValidation(t *testing.T) {
	cases := []struct {
		name string
		tbl  *Table
	}{
		{"empty name", &Table{Columns: []string{"A"}}},
		{"no columns", &Table{Name: "T"}},
		{"dup column", &Table{Name: "T", Columns: []string{"A", "a"}}},
		{"empty key", &Table{Name: "T", Columns: []string{"A"}, Keys: [][]string{{}}}},
		{"bad key col", &Table{Name: "T", Columns: []string{"A"}, Keys: [][]string{{"B"}}}},
		{"degenerate fd", &Table{Name: "T", Columns: []string{"A"}, FDs: []FD{{From: nil, To: []string{"A"}}}}},
		{"bad fd col", &Table{Name: "T", Columns: []string{"A"}, FDs: []FD{{From: []string{"A"}, To: []string{"B"}}}}},
	}
	for _, tc := range cases {
		c := NewCatalog()
		if err := c.AddTable(tc.tbl); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	c := NewCatalog()
	if err := c.AddTable(&Table{Name: "T", Columns: []string{"A"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(&Table{Name: "t", Columns: []string{"A"}}); err == nil {
		t.Error("duplicate table (case-insensitive) should fail")
	}
}

func TestColumnIndex(t *testing.T) {
	c := telco(t)
	calls := c.MustTable("Calls")
	if got := calls.ColumnIndex("plan_id"); got != 2 {
		t.Errorf("ColumnIndex(plan_id) = %d, want 2", got)
	}
	if got := calls.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
}

func TestIsKeyAndClosure(t *testing.T) {
	c := telco(t)
	calls := c.MustTable("Calls")
	if !calls.IsKey([]string{"Call_Id"}) {
		t.Error("Call_Id is a key")
	}
	if calls.IsKey([]string{"Cust_Id"}) {
		t.Error("Cust_Id is not a key of Calls")
	}
	if !calls.IsKey([]string{"Call_Id", "Day"}) {
		t.Error("supersets of keys are keys")
	}
}

func TestFDDerivedKey(t *testing.T) {
	// If A -> B and B is a key, then A is a key (paper Section 5.1).
	c := NewCatalog()
	err := c.AddTable(&Table{
		Name:    "R",
		Columns: []string{"A", "B", "C"},
		Keys:    [][]string{{"B"}},
		FDs:     []FD{{From: []string{"A"}, To: []string{"B"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := c.MustTable("R")
	if !r.IsKey([]string{"A"}) {
		t.Error("A functionally determines key B, so A is a key")
	}
	if r.IsKey([]string{"C"}) {
		t.Error("C is not a key")
	}
}

func TestHasKey(t *testing.T) {
	c := telco(t)
	if !c.MustTable("Calls").HasKey() {
		t.Error("Calls has a key")
	}
	nk := NewCatalog()
	if err := nk.AddTable(&Table{Name: "Bag", Columns: []string{"X"}}); err != nil {
		t.Fatal(err)
	}
	if nk.MustTable("Bag").HasKey() {
		t.Error("Bag has no key")
	}
}

func TestTablesOrderAndString(t *testing.T) {
	c := telco(t)
	tabs := c.Tables()
	if len(tabs) != 3 || tabs[0].Name != "Customer" || tabs[2].Name != "Calls" {
		t.Errorf("Tables() should preserve registration order, got %v", tabs)
	}
	s := c.String()
	for _, frag := range []string{"TABLE Calls(", "KEY(Call_Id)", "TABLE Customer("} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q in:\n%s", frag, s)
		}
	}
}

func TestFDClosureTransitive(t *testing.T) {
	c := NewCatalog()
	err := c.AddTable(&Table{
		Name:    "R",
		Columns: []string{"A", "B", "C", "D"},
		FDs: []FD{
			{From: []string{"A"}, To: []string{"B"}},
			{From: []string{"B"}, To: []string{"C"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.MustTable("R").FDClosure([]string{"A"})
	for _, want := range []string{"a", "b", "c"} {
		if !cl[want] {
			t.Errorf("closure(A) missing %s", want)
		}
	}
	if cl["d"] {
		t.Error("closure(A) should not contain D")
	}
}
