package aggview

import (
	"strings"
	"testing"

	"aggview/internal/datagen"
	"aggview/internal/engine"
)

func telcoSystem(t *testing.T, calls int) *System {
	t.Helper()
	s := New()
	s.Catalog = datagen.TelcoCatalog()
	s.AdoptDB(datagen.Telco(datagen.TelcoConfig{Calls: calls, Seed: 7}),
		"Calls", "Calling_Plans", "Customer")
	s.MustDefineView("V1", `SELECT Calls.Plan_Id, Plan_Name, Month, Year, SUM(Charge)
		FROM Calls, Calling_Plans
		WHERE Calls.Plan_Id = Calling_Plans.Plan_Id
		GROUP BY Calls.Plan_Id, Plan_Name, Month, Year`)
	return s
}

const facadeQ = `SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge)
	FROM Calls, Calling_Plans
	WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995
	GROUP BY Calling_Plans.Plan_Id, Plan_Name
	HAVING SUM(Charge) < 1000000`

func TestSystemEndToEnd(t *testing.T) {
	s := telcoSystem(t, 5000)
	if _, err := s.Materialize("V1"); err != nil {
		t.Fatal(err)
	}

	direct := s.MustQuery(facadeQ)
	res, used, err := s.QueryBest(facadeQ)
	if err != nil {
		t.Fatal(err)
	}
	if used == nil {
		t.Fatal("QueryBest should pick the view-based plan")
	}
	if used.Used[0] != "V1" {
		t.Errorf("wrong view: %v", used.Used)
	}
	if !engine.ResultsEqualBag(direct, res) {
		t.Fatalf("rewritten result differs:\n%s\nvs\n%s", direct.Sorted(), res.Sorted())
	}
}

func TestQueryBestFallsBackToDirect(t *testing.T) {
	s := telcoSystem(t, 200)
	// No view covers this query.
	res, used, err := s.QueryBest("SELECT Cust_Id, COUNT(Call_Id) FROM Calls GROUP BY Cust_Id")
	if err != nil {
		t.Fatal(err)
	}
	if used != nil {
		t.Error("no rewriting should be used")
	}
	if res.Len() == 0 {
		t.Error("direct execution returned nothing")
	}
}

func TestUnmaterializedViewStillWorks(t *testing.T) {
	s := telcoSystem(t, 300)
	// V1 is defined but not materialized; Plan may still pick it (it
	// estimates the definition), and execution expands the definition.
	res, _, err := s.QueryBest(facadeQ)
	if err != nil {
		t.Fatal(err)
	}
	direct := s.MustQuery(facadeQ)
	if !engine.ResultsEqualBag(direct, res) {
		t.Fatal("on-the-fly view expansion differs from direct evaluation")
	}
}

func TestLoadScript(t *testing.T) {
	s := New()
	err := s.Load(`
		CREATE TABLE T(A, B) KEY(A) FD(B -> A);
		CREATE VIEW V AS SELECT A, SUM(B) FROM T GROUP BY A;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Catalog.Table("T"); !ok {
		t.Error("table not registered")
	}
	if _, ok := s.Views.Get("V"); !ok {
		t.Error("view not registered")
	}
	if err := s.Load("SELECT A FROM T"); err == nil {
		t.Error("bare SELECT in a script should be rejected")
	}
	if err := s.Load("CREATE VIEW W AS SELECT Z FROM T"); err == nil {
		t.Error("bad view definition should be rejected")
	}
	if err := s.Load("CREATE TABLE T(A)"); err == nil {
		t.Error("duplicate table should be rejected")
	}
	if err := s.Load("CREATE +"); err == nil {
		t.Error("parse error should surface")
	}
}

func TestInsertAndQuery(t *testing.T) {
	s := New()
	s.MustLoad("CREATE TABLE T(A, B)")
	if err := s.Insert("T", []Value{Int(1), Str("x")}, []Value{Int(1), Str("y")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("T", []Value{Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := s.Insert("Nope", []Value{Int(1)}); err == nil {
		t.Error("unknown table should fail")
	}
	r := s.MustQuery("SELECT A, COUNT(B) FROM T GROUP BY A")
	if r.Len() != 1 || r.Tuples[0][1].AsInt() != 2 {
		t.Fatalf("unexpected result:\n%s", r)
	}
	if got := s.Stats["t"]; got != 2 {
		t.Errorf("stats not maintained: %v", got)
	}
}

func TestSetRelationValidation(t *testing.T) {
	s := New()
	s.MustLoad("CREATE TABLE T(A, B)")
	bad := engine.NewRelation("X")
	if err := s.SetRelation("T", bad); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := s.SetRelation("Nope", bad); err == nil {
		t.Error("unknown table should fail")
	}
	good := engine.NewRelation("A", "B")
	good.Add(Int(1), Int(2))
	if err := s.SetRelation("T", good); err != nil {
		t.Fatal(err)
	}
	if s.MustQuery("SELECT A FROM T").Len() != 1 {
		t.Error("relation not installed")
	}
}

func TestMaterializeErrors(t *testing.T) {
	s := New()
	if _, err := s.Materialize("V"); err == nil {
		t.Error("unknown view should fail")
	}
}

func TestExplain(t *testing.T) {
	s := telcoSystem(t, 500)
	if _, err := s.Materialize("V1"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Explain(facadeQ)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"rewriting 1", "using V1", "Conds'"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	out2, err := s.Explain("SELECT Cust_Id FROM Calls")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "no view-based rewritings") {
		t.Errorf("Explain should report absence: %s", out2)
	}
	if _, err := s.Explain("SELECT nope FROM Calls"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestRewritingsAPI(t *testing.T) {
	s := telcoSystem(t, 100)
	rws, err := s.Rewritings(facadeQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(rws) == 0 {
		t.Fatal("expected rewritings")
	}
	r, err := s.ExecRewriting(rws[0])
	if err != nil {
		t.Fatal(err)
	}
	direct := s.MustQuery(facadeQ)
	if !engine.ResultsEqualBag(direct, r) {
		t.Error("ExecRewriting differs from direct execution")
	}
}

func TestValueConstructors(t *testing.T) {
	if Int(3).AsInt() != 3 || Float(2.5).AsFloat() != 2.5 ||
		Str("a").AsString() != "a" || !Bool(true).AsBool() {
		t.Error("value constructors broken")
	}
}
